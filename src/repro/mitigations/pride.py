"""PrIDE (Jaleel et al., ISCA'24) — probabilistic in-DRAM tracker baseline.

PrIDE samples activations into a tiny FIFO (4 entries per bank) with a
fixed probability and mitigates a sampled row on every controller-issued
RFM.  Its security scales with the RFM cadence: roughly T_RH ~ 1700 with
one RFM per tREFI and proportionally lower thresholds with proportionally
more frequent RFMs (Section II-C2 of the QPRAC paper) — which is exactly
why it becomes impractical below T_RH ~ 250: the required cadence
approaches one RFM every ~10 activations, costing ~30% of activation
bandwidth.

The QPRAC paper's Figure 20 comparison drives PrIDE at the cadence its
target T_RH requires; :func:`pride_cadence_acts` encodes that scaling.
"""

from __future__ import annotations

import numpy as np

from repro.core.defense import (
    BankDefense,
    MitigationReason,
    apply_mitigation,
)
from repro.core.fifo_queue import FifoServiceQueue
from repro.core.prac_counters import PRACCounterBank
from repro.errors import ConfigError

#: RFM interval = T_RH / this ratio.  PrIDE tolerates T_RH ~1700 with one
#: RFM per tREFI (~67 activations): 1700 / 67 ~ 25.
PRIDE_TRH_TO_INTERVAL_RATIO = 25.0

#: PrIDE's per-activation sampling probability into the FIFO.
PRIDE_SAMPLE_PROBABILITY = 1.0 / 8.0


def pride_cadence_acts(t_rh: int) -> int:
    """Activations between RFMs for PrIDE to defend ``t_rh``."""
    if t_rh < 1:
        raise ConfigError(f"t_rh must be >= 1, got {t_rh}")
    return max(1, int(t_rh / PRIDE_TRH_TO_INTERVAL_RATIO))


class PrIDEBank(BankDefense):
    """PrIDE defense state for one bank: sampling FIFO + cadence RFMs."""

    def __init__(
        self,
        t_rh: int,
        num_rows: int,
        queue_size: int = 4,
        blast_radius: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.t_rh = t_rh
        self.queue = FifoServiceQueue(queue_size)
        self.counters = PRACCounterBank(num_rows, counter_bits=None)
        self.blast_radius = blast_radius
        self._cadence = pride_cadence_acts(t_rh)
        self._rng = np.random.default_rng(seed + 0x9E3779B9)

    @property
    def rfm_cadence_acts(self) -> int:
        return self._cadence

    def on_activation(self, row: int) -> bool:
        self.stats.activations += 1
        self.counters.activate(row)
        if self._rng.random() < PRIDE_SAMPLE_PROBABILITY:
            if self.queue.is_full:
                # PrIDE overwrites the oldest sample rather than dropping
                # the new one (keeps samples fresh).
                self.queue.pop_front()
            self.queue.try_enqueue(row)
        return False  # PrIDE never uses the Alert pin

    def wants_alert(self) -> bool:
        return False

    def on_rfm(self, is_alerting_bank: bool) -> list[int]:
        row = self.queue.pop_front_or_none()
        if row is None:
            return []
        apply_mitigation(
            self.counters,
            row,
            self.blast_radius,
            self.stats,
            MitigationReason.CADENCE,
        )
        return [row]
