"""The ``event`` engine: the nanosecond event-driven reference simulator.

This is the original execution path — four :class:`~repro.cpu.core.TraceCore`
instances through a shared LLC into the
:class:`~repro.controller.memctrl.MemorySystem`, driven by
:class:`~repro.engine.EventQueue` — extracted behind the
:class:`~repro.sim.engines.base.SimEngine` seam.  It is the *reference*
engine: its results are pinned byte-for-byte by the golden-hash tests,
and every other engine's aggregates are judged against it.
"""

from __future__ import annotations

from repro.controller.memctrl import DefenseFactory
from repro.cpu.system import MulticoreSystem, SystemResult
from repro.params import SystemConfig
from repro.sim.engines.base import SimEngine, register_engine
from repro.workloads.synthetic import WorkloadSpec, generate_trace


def build_event_system(
    workload: WorkloadSpec,
    config: SystemConfig,
    defense_factory: DefenseFactory,
    n_entries: int,
    seed: int = 0,
    telemetry=None,
) -> MulticoreSystem:
    """Construct (but do not run) the event-driven system for one job.

    The paper's methodology: ``config.cpu.cores`` homogeneous copies of
    the workload with per-core seeds.  Shared with
    :func:`repro.sim.runner.build_system` (the public wrapper) and the
    bench harness, which needs the system handle for its event counter.
    """
    traces = [
        generate_trace(workload, n_entries, config.org, seed=seed * 1000 + core)
        for core in range(config.cpu.cores)
    ]
    return MulticoreSystem(
        config, traces, defense_factory, workload_name=workload.name,
        telemetry=telemetry,
    )


@register_engine(
    "event",
    summary="event-driven reference simulator (nanosecond fidelity, "
    "byte-identical golden path)",
)
class EventEngine(SimEngine):
    """Reference engine: full event-loop fidelity, pinned golden hashes."""

    work_unit_name = "events"

    def simulate(
        self,
        workload: WorkloadSpec,
        config: SystemConfig,
        defense_factory: DefenseFactory,
        n_entries: int,
        seed: int = 0,
        variant_name: str | None = None,
        telemetry=None,
    ) -> SystemResult:
        system = build_event_system(
            workload, config, defense_factory, n_entries, seed,
            telemetry=telemetry,
        )
        result = system.run(variant_name=variant_name)
        self.work_units = system.events.events_processed
        # The controller normalized the designator; observed runs carry
        # their summary out-of-band of the canonical payload.
        if system.memory.telemetry is not None:
            result.latency = system.memory.telemetry.summary_dict()
        return result
