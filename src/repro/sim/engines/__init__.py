"""Pluggable simulation engines: the fidelity/throughput tier.

The third registry of the reproduction, next to defenses
(:mod:`repro.defenses`) and sweep backends (:mod:`repro.exp.backend`).
An :class:`EngineSpec` names how a simulation executes::

    simulate_workload("429.mcf", defense="qprac")                  # event (reference)
    simulate_workload("429.mcf", defense="qprac", engine="epoch")  # batched, ~4x faster
    simulate_workload("429.mcf", engine="epoch:trefi_chunk=4")

Shipped engines:

``event``
    The nanosecond event-driven reference simulator.  Byte-identical to
    the pre-registry code path (golden-hash pinned); use it for every
    number that lands in a figure you compare against the paper.
``epoch``
    Batched tREFI-window engine: exact defense state machines and ABO
    protocol over approximate epoch-granular timing.  Several times
    faster; agrees with ``event`` on mean slowdown % and alerts/tREFI
    within the tolerance asserted by ``tests/test_engines.py``.  Use it
    for wide sweeps, smoke runs and interactive exploration.

Importing this package registers both; plugins add more with
:func:`register_engine`.
"""

from repro.sim.engines.base import (
    DEFAULT_ENGINE,
    DEFAULT_ENGINE_SPEC,
    EngineRegistry,
    EngineSpec,
    RegisteredEngine,
    REGISTRY,
    SimEngine,
    register_engine,
    registered_engines,
    resolve_engine,
)
from repro.sim.engines.event import EventEngine, build_event_system
from repro.sim.engines.epoch import EpochEngine

__all__ = [
    "DEFAULT_ENGINE",
    "DEFAULT_ENGINE_SPEC",
    "EngineRegistry",
    "EngineSpec",
    "EpochEngine",
    "EventEngine",
    "REGISTRY",
    "RegisteredEngine",
    "SimEngine",
    "build_event_system",
    "register_engine",
    "registered_engines",
    "resolve_engine",
]
