"""The ``epoch`` engine: batched tREFI-window simulation.

QPRAC's structure is naturally batchable per refresh epoch: PSQ
insertions ride on ACTs, proactive mitigations ride on REFs, and the
Alert Back-Off protocol is rank-scoped bookkeeping — none of it needs a
nanosecond event loop to stay faithful.  This engine exploits that: the
whole multi-core access stream is consumed as vectorized trace columns,
merged once into global front-end order, filtered through the shared
LLC, and then replayed against flat array-backed bank/rank/bus state in
tREFI-sized batches (``trefi_chunk`` windows per round) — no event
queue, no callbacks, no per-event dispatch.  The *same defense objects*
the event engine builds are driven through the narrowed
:class:`~repro.core.defense.EpochBankView` interface, so every
registered defense (QPRAC variants, MOAT, Panopticon, PrIDE, Mithril,
UPRAC, plugins) runs unmodified.

What is kept exact
    Defense state machines (per-ACT counter/PSQ updates, per-REF
    proactive mitigations, per-RFM servicing), the Alert Back-Off
    protocol (ABO window, ABO_Delay debt, N_mit RFMs, scope semantics
    via the shared :func:`~repro.controller.memctrl.rfm_scope_banks`),
    REF blackout windows (analytic, same cached-interval trick as the
    controller), cadence RFMs, and DDR5 first-order service timing
    (row hit/miss/conflict paths, tRRD, channel bus occupancy).

What is approximated
    Event interleaving.  Requests are serviced in unstalled front-end
    order rather than exact issue order, the per-core stall model is a
    delay accumulator over MSHR/ROB/write-buffer rings instead of an
    event-driven ROB, and second-order bank constraints (tRAS/tWR/tRTP
    precharge floors, FR-FCFS reordering) are dropped.  Aggregates
    (slowdown %, alerts/tREFI) track the event engine within the
    tolerance asserted by ``tests/test_engines.py``; individual event
    timings do not.

Determinism: everything is a fixed-order loop over deterministic
arrays — two runs are byte-identical, pinned by the epoch golden
digests next to the event engine's.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache

import numpy as np

from repro.controller.memctrl import DefenseFactory, MemStats, rfm_scope_banks
from repro.core.defense import EpochBankView, MitigationReason
from repro.obs.telemetry import active_telemetry
from repro.cpu.core import WRITE_BUFFER_DEPTH
from repro.cpu.system import SystemResult
from repro.dram.address import AddressMapper
from repro.errors import ConfigError
from repro.params import RfmScope, SystemConfig
from repro.sim.engines.base import SimEngine, register_engine
from repro.workloads.synthetic import WorkloadSpec, generate_trace


class _EpochBank:
    """Array-row of per-bank state (one record per DRAM bank)."""

    __slots__ = (
        "index", "bank", "channel", "rank", "view", "on_activation",
        "cadence_acts",
        "open_row", "busy", "blocked", "act_allowed", "pre_allowed",
        "cas_allowed", "cadence_counter",
    )

    def __init__(self, index, bank, channel, view):
        self.index = index
        #: Position within the bank group (SAME_BANK scope key).
        self.bank = bank
        self.channel = channel
        self.view: EpochBankView = view
        #: The per-ACT hook, hoisted off the view (one dispatch hop).
        self.on_activation = view.on_activation
        self.cadence_acts = view.cadence_acts
        self.open_row = -1
        self.busy = 0.0
        self.blocked = 0.0
        #: DDR5 per-bank floors, maintained exactly like BankState's
        #: (tRC ACT-to-ACT, tRAS/tWR/tRTP precharge, tRCD CAS).
        self.act_allowed = 0.0
        self.pre_allowed = 0.0
        self.cas_allowed = 0.0
        self.cadence_counter = 0
        self.rank: _EpochRank | None = None


class _EpochRank:
    """Rank-scoped protocol state (mirrors the controller's RankState)."""

    __slots__ = (
        "index", "banks", "on_refs", "ref_offset", "next_ref",
        "alert_busy_until", "acts_since_rfm", "blackouts",
        "act_acc", "act_wait", "alerts", "rfm_commands",
        "ref_free_start", "ref_free_end",
    )

    def __init__(self, index, banks, ref_offset):
        self.index = index
        self.banks = banks
        #: Pre-bound per-bank ``on_ref`` hooks (one REF tick = one pass).
        self.on_refs = tuple(b.view.on_ref for b in banks)
        self.ref_offset = ref_offset
        self.next_ref = ref_offset
        self.alert_busy_until = 0.0
        # Allow the very first Alert without an ABO_Delay debt.
        self.acts_since_rfm = 1 << 30
        self.blackouts: list[tuple[float, float]] = []
        #: ACTs issued in the current tREFI chunk and the resulting
        #: statistical tRRD queueing wait (see _replay's window roll).
        self.act_acc = 0
        self.act_wait = 0.0
        self.alerts = 0
        self.rfm_commands = 0
        self.ref_free_start = 0.0
        self.ref_free_end = 0.0


class _EpochCore:
    """One core's request columns plus its stall-model state.

    The stall model is a delay accumulator (the front end only ever
    falls further behind its unstalled schedule) over three in-flight
    rings: the MSHR ring (a read waits for the completion of the read
    ``max_outstanding_misses`` before it), the ROB window (a read waits
    for loads more than ``rob_entries`` instructions older to retire —
    the prefix-max of their completions, since retirement is in-order)
    and the posted-write ring (``WRITE_BUFFER_DEPTH`` deep).
    """

    __slots__ = (
        "cid", "reqs", "req", "load_inst",
        "idx", "n", "base", "delay", "front_total", "total_instructions",
        "read_done", "read_pmax", "read_inst", "read_loadidx",
        "rob_ptr", "rob_read_ptr", "mshr_ptr",
        "write_done", "last_done", "finish",
    )

    def __init__(self, reqs, load_inst, front_total, total_instructions,
                 cid=0):
        #: Core index, carried only for telemetry sample attribution.
        self.cid = cid
        #: Request tuples ``(front, inst, loadidx, bank, row, chan,
        #: is_write, is_demand)`` — one unpack per request in the replay
        #: loop instead of eight indexed column loads.
        self.reqs = reqs
        #: The tuple at ``idx`` (staged by the replay loop's advance).
        self.req = reqs[0] if reqs else None
        self.load_inst = load_inst
        self.idx = 0
        self.n = len(reqs)
        #: Issue time of the next request (delay + ring floors applied);
        #: the replay loop's merge key.  The first request has no floors
        #: (all rings empty), so its issue time is its front-end clock.
        self.base = reqs[0][0] if reqs else 0.0
        self.delay = 0.0
        self.front_total = front_total
        self.total_instructions = total_instructions
        self.read_done: list[float] = []
        self.read_pmax: list[float] = []
        self.read_inst: list[int] = []
        self.read_loadidx: list[int] = []
        #: First-load-not-yet-known-retired search pointer (ROB window)
        #: and the count of DRAM reads at or before it.
        self.rob_ptr = 0
        self.rob_read_ptr = 0
        self.mshr_ptr = -1
        self.write_done: list[float] = []
        self.last_done = 0.0
        self.finish = 0.0


@register_engine(
    "epoch",
    summary="batched tREFI-epoch simulator (exact defense state machines, "
    "approximate timing, several times faster than event)",
)
class EpochEngine(SimEngine):
    """Batched engine: whole tREFI windows per step, array-backed state."""

    work_unit_name = "accesses"

    def __init__(self, trefi_chunk: int = 1) -> None:
        if not isinstance(trefi_chunk, int) or isinstance(trefi_chunk, bool) \
                or trefi_chunk < 1:
            raise ConfigError(
                f"trefi_chunk must be a positive int, got {trefi_chunk!r}"
            )
        #: tREFI windows consumed per batching round.  The chunk boundary
        #: is where idle ranks catch up on REF ticks; active ranks take
        #: their REFs in-stream, so larger chunks trade a little REF
        #: timing fidelity on quiet ranks for fewer synchronization
        #: points.
        self.trefi_chunk = trefi_chunk

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def simulate(
        self,
        workload: WorkloadSpec,
        config: SystemConfig,
        defense_factory: DefenseFactory,
        n_entries: int,
        seed: int = 0,
        variant_name: str | None = None,
        telemetry=None,
    ) -> SystemResult:
        tm = active_telemetry(telemetry)
        stats = MemStats()
        banks, ranks = self._build_memory(config, defense_factory)
        stream = _prepare_stream(
            workload, n_entries, seed, config.org, config.cpu
        )
        llc_hits, llc_total = stream.llc_hits, stream.llc_total
        cores = [
            _EpochCore(
                reqs=stream.reqs[c],
                load_inst=stream.load_inst[c],
                front_total=stream.front_total[c],
                total_instructions=stream.total_instructions[c],
                cid=c,
            )
            for c in range(len(stream.reqs))
        ]
        self.work_units = llc_total

        self._replay(cores, banks, ranks, config, stats, tm)

        timing = config.timing
        t_refi = timing.t_refi
        for core in cores:
            core.finish = max(core.front_total + core.delay, core.last_done)
        sim_time = max(core.finish for core in cores)
        # Tail REFs: the event loop keeps firing per-rank REF ticks (and
        # with them proactive mitigations) until the last core retires.
        for rank in ranks:
            while rank.next_ref < sim_time:
                for bank in rank.banks:
                    bank.view.on_ref()
                if tm is not None:
                    tm.record_ref(
                        rank.next_ref, rank.next_ref + timing.t_rfc,
                        (b.view.defense for b in rank.banks),
                    )
                rank.next_ref += t_refi
        # The refs statistic is analytic — ticks at or before sim_time —
        # so batch-boundary catch-up can't over-count the final window.
        stats.refs = sum(
            int((sim_time - rank.ref_offset) // t_refi) + 1
            for rank in ranks if sim_time >= rank.ref_offset
        )
        stats.alerts = sum(rank.alerts for rank in ranks)
        stats.rfm_commands = sum(rank.rfm_commands for rank in ranks)

        freq = config.cpu.freq_ghz
        core_ipcs = [
            (core.total_instructions / (core.finish * freq))
            if core.finish > 0 else 0.0
            for core in cores
        ]
        result = SystemResult.from_stats(
            workload=workload.name,
            variant=variant_name or config.variant.value,
            sim_time_ns=sim_time,
            core_ipcs=core_ipcs,
            instructions=sum(c.total_instructions for c in cores),
            stats=stats,
            llc_hit_rate=llc_hits / llc_total if llc_total else 0.0,
            mitigations=self._defense_stats(banks),
        )
        if tm is not None:
            result.latency = tm.summary_dict()
        return result

    # ------------------------------------------------------------------
    # Setup: banks, ranks, defenses
    # ------------------------------------------------------------------
    def _build_memory(self, config, defense_factory):
        org = config.org
        banks: list[_EpochBank] = []
        ranks: list[_EpochRank] = []
        rank_count = org.channels * org.ranks
        stagger = config.timing.t_refi / max(1, rank_count)
        flat = 0
        for channel in range(org.channels):
            for rank in range(org.ranks):
                rank_banks: list[_EpochBank] = []
                for _bg in range(org.bankgroups):
                    for bank in range(org.banks_per_group):
                        view = EpochBankView(defense_factory(flat, config))
                        record = _EpochBank(flat, bank, channel, view)
                        banks.append(record)
                        rank_banks.append(record)
                        flat += 1
                rank_index = channel * org.ranks + rank
                rank_state = _EpochRank(
                    rank_index, rank_banks, stagger * rank_index
                )
                for record in rank_banks:
                    record.rank = rank_state
                ranks.append(rank_state)
        return banks, ranks

    # ------------------------------------------------------------------
    # The replay loop (hot): issue-ordered merge in tREFI-chunk batches
    # ------------------------------------------------------------------
    def _replay(self, cores, banks, ranks, config, stats, tm=None):
        timing = config.timing
        prac = config.prac
        t_rp = timing.t_rp
        t_rcd = timing.t_rcd
        t_cl = timing.t_cl
        t_burst = timing.t_burst
        t_rrd = timing.t_rrd
        t_rc = timing.t_rc
        t_ras = timing.t_ras
        t_wr = timing.t_wr
        t_rtp = timing.t_rtp
        t_refi = timing.t_refi
        t_rfc = timing.t_rfc
        llc_latency = config.cpu.llc_latency_ns
        rob_entries = config.cpu.rob_entries
        max_misses = config.cpu.max_outstanding_misses
        per_inst_ns = config.cpu.cycle_ns / config.cpu.issue_width
        # Shared short-occupancy resources (channel bus, rank tRRD gate)
        # are modeled as M/D/1-style queueing waits from the previous
        # chunk's utilization, not as hard reservation frontiers: the
        # replay processes requests in issue order, and a hard frontier
        # would let one congested bank's far-future transfer block every
        # other bank's earlier idle slots (head-of-line poison the
        # event engine, which commits in service order, never sees).
        n_channels = config.org.channels
        bus_acc = [0.0] * n_channels
        bus_wait = [0.0] * n_channels
        chunk_ns = t_refi * self.trefi_chunk
        rank_avail = self._rank_avail
        # Telemetry is observation-only: one None test per request when
        # off, mirroring the controller's _service_hot slot.
        tm_record = tm.record_request if tm is not None else None

        # The merge frontier: every live core's next issue time.  Four
        # cores, so a linear argmin beats a heap; requests are processed
        # in true non-decreasing issue order (each step only pushes the
        # chosen core's own next base later), which is what keeps the
        # shared bank/bus/rank frontiers honest across cores.
        #
        # A core's next issue time ("base") is its front-end schedule
        # plus the binding ROB/MSHR/write-buffer floor, computed inline
        # at each advance (bottom of the loop).  The ROB floor is
        # *lag-based*: the event core stalls at the first entry that no
        # longer fits the window, and on resume still re-executes every
        # instruction between that entry and this request — modeling the
        # floor at this request's own front (a plain ``max``) would
        # silently delete that re-execution time, so the lag folds it
        # into the monotone delay accumulator instead.  MSHR and
        # write-buffer stalls do happen at the request's own entry, so
        # those are plain floors.
        live = [core for core in cores if core.n]
        epoch_end = chunk_ns
        # Aggregate counters accumulate in locals and flush once after
        # the loop (three attribute stores per request add up).
        n_reads = n_writes = n_acts = n_row_hits = 0
        read_latency_sum = 0.0
        while live:
            core = live[0]
            base = core.base
            for other in live:
                if other.base < base:
                    core = other
                    base = other.base
            if base >= epoch_end:
                # Chunk boundary: ranks whose REF ticks fell due while
                # they were idle catch up before the next batch (busy
                # ranks take their ticks in-stream, below), and the
                # bus/tRRD utilization windows roll over.
                epoch_end += chunk_ns
                for ch in range(n_channels):
                    rho = bus_acc[ch] / chunk_ns
                    if rho > 0.9:
                        rho = 0.9
                    bus_wait[ch] = rho / (2.0 * (1.0 - rho)) * t_burst
                    bus_acc[ch] = 0.0
                for rank in ranks:
                    rho = rank.act_acc * t_rrd / chunk_ns
                    if rho > 0.9:
                        rho = 0.9
                    rank.act_wait = rho / (2.0 * (1.0 - rho)) * t_rrd
                    rank.act_acc = 0
                    if rank.blackouts:
                        # Safe expiry: every future service query is at
                        # least the merge key (plus the LLC hop), so
                        # windows ending at or before it are done.
                        rank.blackouts = [
                            b for b in rank.blackouts if b[1] > base
                        ]
                    while rank.next_ref < base:
                        for hook in rank.on_refs:
                            hook()
                        if tm is not None:
                            tm.record_ref(
                                rank.next_ref, rank.next_ref + t_rfc,
                                (b.view.defense for b in rank.banks),
                            )
                        rank.next_ref += t_refi
                continue
            (_front, inst_i, loadidx_i, bank_i, row, ch, is_write,
             demand) = core.req

            t0 = base + llc_latency
            bank = banks[bank_i]
            rank = bank.rank
            start = t0
            if bank.busy > start:
                start = bank.busy
            if bank.blocked > start:
                start = bank.blocked
            if bank.open_row == row:
                cas = bank.cas_allowed
                if start > cas:
                    cas = start
                if not (rank.ref_free_start <= cas < rank.ref_free_end) \
                        or rank.blackouts:
                    cas = rank_avail(rank, cas, t_refi, t_rfc)
                n_row_hits += 1
                act_time = None
            else:
                if bank.open_row < 0:
                    act_ready = bank.act_allowed
                    if start > act_ready:
                        act_ready = start
                else:
                    pre = bank.pre_allowed
                    if start > pre:
                        pre = start
                    if not (rank.ref_free_start <= pre
                            < rank.ref_free_end) or rank.blackouts:
                        pre = rank_avail(rank, pre, t_refi, t_rfc)
                    act_ready = pre + t_rp
                    if bank.act_allowed > act_ready:
                        act_ready = bank.act_allowed
                act_time = act_ready + rank.act_wait
                if not (rank.ref_free_start <= act_time
                        < rank.ref_free_end) or rank.blackouts:
                    act_time = rank_avail(rank, act_time, t_refi, t_rfc)
                rank.act_acc += 1
                bank.open_row = row
                bank.act_allowed = act_time + t_rc
                bank.pre_allowed = act_time + t_ras
                cas = act_time + t_rcd
                bank.cas_allowed = cas
            data_start = cas + t_cl + bus_wait[ch]
            bus_acc[ch] += t_burst
            done = data_start + t_burst
            bank.busy = data_start
            if is_write:
                pre_floor = done + t_wr
                if pre_floor > bank.pre_allowed:
                    bank.pre_allowed = pre_floor
                n_writes += 1
                if demand:
                    core.write_done.append(done)
            else:
                pre_floor = cas + t_rtp
                if pre_floor > bank.pre_allowed:
                    bank.pre_allowed = pre_floor
                n_reads += 1
                read_latency_sum += done - t0
                core.read_done.append(done)
                pmax = core.read_pmax
                pmax.append(done if not pmax or done > pmax[-1]
                            else pmax[-1])
                core.read_inst.append(inst_i)
                core.read_loadidx.append(loadidx_i)
            if done > core.last_done:
                core.last_done = done
            if tm_record is not None:
                tm_record(t0, done, is_write, core.cid)
            if act_time is not None:
                n_acts += 1
                # In-stream REF catch-up: this rank's defense hooks fire
                # before the ACT that passed their tick time, preserving
                # the on_ref/on_activation interleaving the proactive
                # variants depend on.
                if rank.next_ref <= act_time:
                    while rank.next_ref <= act_time:
                        for hook in rank.on_refs:
                            hook()
                        if tm is not None:
                            tm.record_ref(
                                rank.next_ref, rank.next_ref + t_rfc,
                                (b.view.defense for b in rank.banks),
                            )
                        rank.next_ref += t_refi
                rank.acts_since_rfm += 1
                wants_alert = bank.on_activation(row)
                cadence = bank.cadence_acts
                if cadence is not None:
                    bank.cadence_counter += 1
                    if bank.cadence_counter >= cadence:
                        bank.cadence_counter = 0
                        self._cadence_rfm(bank, act_time, timing, stats, tm)
                if wants_alert:
                    self._maybe_alert(bank, rank, act_time, prac, timing, tm)

            # Advance: stage the next request and compute its issue time
            # (front-end schedule + ROB/MSHR/write-buffer floors; see the
            # loop header for the lag-based ROB semantics).
            i = core.idx + 1
            if i >= core.n:
                live.remove(core)
                continue
            core.idx = i
            r = core.reqs[i]
            core.req = r
            front_i = r[0]
            delay = core.delay
            if r[7]:  # demand request
                read_done = core.read_done
                nr = len(read_done)
                limit = r[1] - rob_entries
                if nr and limit > 0:
                    # ROB space: retirement (quantized at load
                    # completions — bubbles and writes drain behind the
                    # nearest load) must reach inst - rob.  The binding
                    # point is the FIRST load, hit or miss, whose mark
                    # reaches that limit; it retires at the prefix-max
                    # completion of every DRAM read up to it plus the
                    # LLC hop(s) for hit loads in between.  When even
                    # the newest issued load falls short, the whole
                    # window drains (over-ROB bubble-block streaming).
                    load_inst = core.load_inst
                    read_loadidx = core.read_loadidx
                    issued_loads = r[2]
                    rob_ptr = core.rob_ptr
                    while rob_ptr < issued_loads and \
                            load_inst[rob_ptr] < limit:
                        rob_ptr += 1
                    core.rob_ptr = rob_ptr
                    if rob_ptr >= issued_loads:
                        resume = core.read_pmax[nr - 1]
                        stall_front = front_i
                    else:
                        bind = rob_ptr + 1  # 1-based load number
                        rp = core.rob_read_ptr
                        while rp < nr and read_loadidx[rp] <= bind:
                            rp += 1
                        core.rob_read_ptr = rp
                        if rp:
                            resume = core.read_pmax[rp - 1]
                            if read_loadidx[rp - 1] != bind:
                                resume += llc_latency
                        else:
                            resume = 0.0
                        hits_between = (issued_loads - 1 - bind) \
                            - (nr - rp)
                        if hits_between > 0:
                            resume += hits_between * llc_latency
                        prev_mark = load_inst[rob_ptr - 1] if rob_ptr \
                            else 0
                        stall_front = (prev_mark + rob_entries) \
                            * per_inst_ns
                        if stall_front > front_i:
                            stall_front = front_i
                    lag = resume - stall_front
                    if lag > delay:
                        delay = lag
                base = front_i + delay
                if r[6]:  # demand write: write-buffer ring
                    write_done = core.write_done
                    nw = len(write_done)
                    if nw >= WRITE_BUFFER_DEPTH:
                        floor = write_done[nw - WRITE_BUFFER_DEPTH]
                        if floor > base:
                            base = floor
                            delay = base - front_i
                else:
                    # MSHR window counts every load — LLC hits included
                    # — and slots free on in-order retirement.
                    displaced = r[2] - max_misses
                    if displaced > 0:
                        mshr_ptr = core.mshr_ptr
                        read_loadidx = core.read_loadidx
                        while mshr_ptr + 1 < nr and \
                                read_loadidx[mshr_ptr + 1] <= displaced:
                            mshr_ptr += 1
                        if mshr_ptr != core.mshr_ptr:
                            core.mshr_ptr = mshr_ptr
                        if mshr_ptr >= 0:
                            floor = core.read_pmax[mshr_ptr]
                            if read_loadidx[mshr_ptr] != displaced:
                                floor += llc_latency  # displaced = hit
                            if floor > base:
                                base = floor
                                delay = base - front_i
                core.delay = delay
            else:
                base = front_i + delay
            if base < core.base:
                base = core.base  # in-order issue: never before previous
            core.base = base
        stats.reads += n_reads
        stats.writes += n_writes
        stats.acts += n_acts
        stats.row_hits += n_row_hits
        stats.total_read_latency_ns += read_latency_sum

    # ------------------------------------------------------------------
    # Rank availability (REF windows + RFMab blackouts), controller's math
    # ------------------------------------------------------------------
    @staticmethod
    def _rank_avail(rank, t, t_refi, t_rfc):
        """Earliest instant >= t outside REF windows and RFMab blackouts.

        Unlike the controller's twin, this must NOT prune the blackout
        list against the query time: the replay issues queries in
        *issue* order, so a congested bank can query far in the future
        before an idle bank queries inside a still-relevant window.
        Expired windows are dropped at chunk boundaries instead, against
        the merge key (a safe lower bound on every future query).
        """
        if not rank.blackouts:
            pos = (t - rank.ref_offset) % t_refi
            window_start = t - pos
            if pos < t_rfc:
                t = window_start + t_rfc
            rank.ref_free_start = window_start + t_rfc
            rank.ref_free_end = window_start + t_refi
            return t
        while True:
            moved = False
            pos = (t - rank.ref_offset) % t_refi
            if pos < t_rfc:
                t += t_rfc - pos
                moved = True
            for b_start, b_end in rank.blackouts:
                if b_start <= t < b_end:
                    t = b_end
                    moved = True
            if not moved:
                return t

    # ------------------------------------------------------------------
    # Activation-side protocol (same sequencing as the controller)
    # ------------------------------------------------------------------
    @staticmethod
    def _cadence_rfm(bank, act_time, timing, stats, tm=None):
        start = act_time + timing.t_rc
        blocked = bank.blocked
        bank.blocked = (blocked if blocked > start else start) + timing.t_rfm
        bank.open_row = -1
        bank.view.on_rfm(True)
        stats.cadence_rfms += 1
        if tm is not None:
            tm.record_blackout(start, bank.blocked, "cadence")

    @staticmethod
    def _maybe_alert(bank, rank, act_time, prac, timing, tm=None):
        if act_time < rank.alert_busy_until:
            return
        if rank.acts_since_rfm < prac.abo_delay:
            return
        rank.alerts += 1
        rank.acts_since_rfm = 0
        rfm_start = act_time + prac.abo_window_ns
        rfm_end = rfm_start + prac.n_mit * timing.t_rfm
        rank.alert_busy_until = rfm_end
        scope = rfm_scope_banks(prac.rfm_scope, rank.banks, bank)
        for _ in range(prac.n_mit):
            for member in scope:
                member.view.on_rfm(member is bank)
        rank.rfm_commands += prac.n_mit
        if tm is not None:
            tm.record_blackout(rfm_start, rfm_end, "abo")
        if prac.rfm_scope is RfmScope.ALL_BANK:
            rank.blackouts.append((rfm_start, rfm_end))
            for member in scope:
                member.open_row = -1
        else:
            for member in scope:
                if rfm_end > member.blocked:
                    member.blocked = rfm_end
                member.open_row = -1

    # ------------------------------------------------------------------
    # Result assembly helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _defense_stats(banks) -> dict[MitigationReason, int]:
        totals = {reason: 0 for reason in MitigationReason}
        for bank in banks:
            by_reason = bank.view.defense.stats.mitigations_by_reason
            for reason, count in by_reason.items():
                totals[reason] += count
        return totals


class _PreparedStream:
    """Defense-independent replay input for one (workload, geometry) cell."""

    __slots__ = ("reqs", "load_inst", "front_total", "total_instructions",
                 "llc_hits", "llc_total")

    def __init__(self):
        self.reqs: list[list[tuple]] = []
        self.load_inst: list[list[int]] = []
        self.front_total: list[float] = []
        self.total_instructions: list[int] = []
        self.llc_hits = 0
        self.llc_total = 0


@lru_cache(maxsize=8)
def _prepare_stream(workload, n_entries, seed, org, cpu) -> _PreparedStream:
    """Traces → merged LLC stream → per-core DRAM request columns.

    Trace columns are consumed vectorized (cumsum front-end clocks, one
    lexsort merge, one array decode); only the inherently sequential LRU
    filter runs as a Python loop, with every column pre-sliced to plain
    lists.  The result depends only on the workload, the trace length,
    the seed and the machine *geometry* — never on the defense or the
    timing parameters — so it is memoized exactly like
    :func:`~repro.workloads.synthetic.generate_trace`: a defense sweep
    re-simulating one workload under many defenses pays for the LLC
    filter once.  Request tuples carry the flat bank *index* (banks are
    per-run objects); everything cached here is treated as immutable by
    the replay loop.
    """
    per_inst_ns = cpu.cycle_ns / cpu.issue_width
    traces = [
        generate_trace(workload, n_entries, org, seed=seed * 1000 + c)
        for c in range(cpu.cores)
    ]
    fronts, insts = [], []
    for trace in traces:
        needs = np.cumsum(trace.instruction_needs())
        insts.append(needs)
        fronts.append(needs * per_inst_ns)

    all_front = np.concatenate(fronts)
    all_core = np.concatenate([
        np.full(len(t), c, dtype=np.int64) for c, t in enumerate(traces)
    ])
    all_entry = np.concatenate([
        np.arange(len(t), dtype=np.int64) for t in traces
    ])
    all_addr = np.concatenate([t.addresses for t in traces])
    all_write = np.concatenate([t.is_write for t in traces])
    # Unstalled front-end order approximates the event engine's temporal
    # interleaving — at the shared LLC *and* at the DRAM frontiers (bank
    # and bus state is touched in near-time order, which is what keeps
    # cross-core contention honest); core id breaks ties
    # deterministically.
    order = np.lexsort((all_core, all_front))

    offset_bits = org.line_size_bytes.bit_length() - 1
    line = all_addr[order] >> np.int64(offset_bits)
    llc_sets = cpu.llc_bytes // (cpu.llc_ways * org.line_size_bytes)
    set_bits = llc_sets.bit_length() - 1
    m_core = all_core[order].tolist()
    m_entry = all_entry[order].tolist()
    m_addr = all_addr[order].tolist()
    m_write = all_write[order].tolist()
    m_set = (line & np.int64(llc_sets - 1)).tolist()
    m_tag = (line >> np.int64(set_bits)).tolist()

    n_cores = cpu.cores
    # Load bookkeeping is LLC-independent, so it is computed vectorized
    # up front: LLC-hit loads occupy MSHR slots in the event core too
    # (slots free on in-order retirement), so the MSHR window counts
    # every load, and the ROB model retires at load granularity via
    # per-load cumulative-instruction marks.
    load_cums = []      # per core: entry -> loads issued through it
    load_insts = []     # per core: per-load cumulative-inst mark
    for c, trace in enumerate(traces):
        is_load = ~trace.is_write
        load_cums.append(np.cumsum(is_load).tolist())
        load_insts.append(insts[c][np.nonzero(is_load)[0]].tolist())
    p_entry: list[list[int]] = [[] for _ in range(n_cores)]
    p_addr: list[list[int]] = [[] for _ in range(n_cores)]
    p_write: list[list[bool]] = [[] for _ in range(n_cores)]
    p_demand: list[list[bool]] = [[] for _ in range(n_cores)]
    # SetAssociativeCache.access, inlined over the pre-sliced columns
    # (this runs once per merged access; keep in sync with
    # repro.cpu.cache — tests/test_engines.py asserts parity against
    # the canonical cache over a real merged stream).
    sets: list[OrderedDict] = [OrderedDict() for _ in range(llc_sets)]
    n_ways = cpu.llc_ways
    hits = 0
    for c, e, addr, is_write, set_i, tag in zip(
        m_core, m_entry, m_addr, m_write, m_set, m_tag
    ):
        ways = sets[set_i]
        if tag in ways:
            hits += 1
            ways.move_to_end(tag)
            if is_write:
                ways[tag] = True
            continue
        writeback = None
        if len(ways) >= n_ways:
            victim, dirty = ways.popitem(last=False)
            if dirty:
                writeback = ((victim << set_bits) | set_i) << offset_bits
        ways[tag] = is_write
        p_entry[c].append(e)
        p_addr[c].append(addr)
        p_write[c].append(is_write)
        p_demand[c].append(True)
        if writeback is not None:
            p_entry[c].append(e)
            p_addr[c].append(writeback)
            p_write[c].append(True)
            p_demand[c].append(False)

    mapper = AddressMapper(org)
    stream = _PreparedStream()
    for c, trace in enumerate(traces):
        if p_addr[c]:
            addr_arr = np.asarray(p_addr[c], dtype=np.int64)
            channel, _rank, _bg, _bank, row, _col, flat = (
                mapper.decode_arrays(addr_arr)
            )
            entries = np.asarray(p_entry[c], dtype=np.int64)
            cum = load_cums[c]
            reqs = list(zip(
                fronts[c][entries].tolist(),
                insts[c][entries].tolist(),
                [cum[e] for e in p_entry[c]],
                flat.tolist(),
                row.tolist(),
                channel.tolist(),
                p_write[c],
                p_demand[c],
            ))
        else:
            reqs = []
        stream.reqs.append(reqs)
        stream.load_inst.append(load_insts[c])
        stream.front_total.append(float(fronts[c][-1]))
        stream.total_instructions.append(trace.total_instructions)
    stream.llc_hits = hits
    stream.llc_total = len(m_core)
    return stream
