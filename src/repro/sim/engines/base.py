"""The simulation-engine registry: named, serializable execution tiers.

A *simulation engine* is one way of executing a workload × defense job:
the ``event`` engine drives the nanosecond event loop (the reference —
byte-identical to the pre-registry simulator), the ``epoch`` engine
advances whole tREFI windows at a time (approximate timing, several
times faster).  Engines are the third registry next to defenses
(:mod:`repro.defenses`) and sweep backends (:mod:`repro.exp.backend`):
everything that can run a simulation is addressable by name, so every
figure chooses its fidelity/throughput point with a string.

An :class:`EngineSpec` is the serializable selection — ``"event"``,
``"epoch"``, ``"epoch:trefi_chunk=4"`` — with the same grammar, the same
registry-independent identity and the same fail-fast validation as
:class:`~repro.defenses.DefenseSpec`.  Specs join
:class:`~repro.exp.spec.Job` cache keys, so cached rows produced by
different engines can never collide.

External code plugs in new engines with one decorator::

    from repro.sim.engines import SimEngine, register_engine

    @register_engine("my-engine", summary="compiled event core")
    class MyEngine(SimEngine):
        def __init__(self, *, chunk: int = 1): ...
        def simulate(self, workload, config, defense_factory,
                     n_entries, seed, variant_name=None): ...

    simulate_workload("429.mcf", engine="my-engine:chunk=8")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import ConfigError, ReproError
from repro.specs import (
    SpecParam,
    check_params,
    introspect_params,
    parse_name_params,
    render_value,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.controller.memctrl import DefenseFactory
    from repro.cpu.system import SystemResult
    from repro.params import SystemConfig
    from repro.workloads.synthetic import WorkloadSpec

#: Name of the reference engine (the event-driven simulator).
DEFAULT_ENGINE = "event"


class SimEngine:
    """One execution tier for workload simulations.

    Subclasses are registered with :func:`register_engine`; instances are
    built per job from an :class:`EngineSpec` (``spec.build()``), so they
    may keep per-run state.  :meth:`simulate` receives everything a job
    resolves — workload spec, effective configuration, per-bank defense
    factory — and returns a :class:`~repro.cpu.system.SystemResult`.
    """

    #: Registry name (set by :func:`register_engine`).
    name: str = "?"
    #: Work-unit count of the most recent :meth:`simulate` call, for
    #: throughput reporting.  The *meaning* is engine-defined (simulator
    #: events for ``event``, consumed trace accesses for ``epoch``) and
    #: named by :attr:`work_unit_name`; cross-engine comparisons must use
    #: wall time, never work-unit rates.
    work_units: int = 0
    work_unit_name: str = "events"

    def simulate(
        self,
        workload: "WorkloadSpec",
        config: "SystemConfig",
        defense_factory: "DefenseFactory",
        n_entries: int,
        seed: int = 0,
        variant_name: str | None = None,
        telemetry=None,
    ) -> "SystemResult":
        """Run one fully-resolved simulation job to completion.

        ``telemetry`` is an optional :class:`~repro.obs.Telemetry`
        recorder.  Engines MUST produce byte-identical results with it
        enabled, disabled, or absent — it observes the simulated clock,
        never steers it — and should attach the summary to the result's
        ``latency`` field when enabled.  Callers only pass the keyword
        when telemetry is enabled, so engines predating the seam keep
        working.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class EngineSpec:
    """A serializable description of one engine: name + parameters.

    Same contract as :class:`~repro.defenses.DefenseSpec`: params are a
    sorted ``(key, value)`` tuple, so equal configurations hash, compare
    and serialize identically regardless of construction order, and the
    serialized form (hence every cache key) is independent of what else
    is registered.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("engine name must be non-empty")
        object.__setattr__(
            self, "params", tuple(sorted(dict(self.params).items()))
        )

    # -- construction --------------------------------------------------
    @classmethod
    def of(cls, name: str, **params: object) -> "EngineSpec":
        """Convenience constructor: ``EngineSpec.of("epoch", trefi_chunk=4)``."""
        return cls(name=name, params=tuple(params.items()))

    @classmethod
    def from_string(cls, text: str) -> "EngineSpec":
        """Parse the CLI syntax ``name`` or ``name:key=value,key=value``
        (the shared :mod:`repro.specs` grammar — identical for defenses
        and engines)."""
        name, params = parse_name_params(text, "engine")
        return cls.of(name, **params)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineSpec":
        """Inverse of :meth:`to_dict`."""
        name = payload.get("name")
        params = payload.get("params", {})
        if not isinstance(name, str) or not isinstance(params, Mapping):
            raise ConfigError(f"malformed engine payload: {payload!r}")
        return cls.of(name, **dict(params))

    # -- identity ------------------------------------------------------
    @property
    def params_dict(self) -> dict[str, object]:
        return dict(self.params)

    @property
    def label(self) -> str:
        """Canonical human/cache label: ``name[:k=v,...]`` (sorted keys)."""
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{k}={render_value(v)}" for k, v in self.params
        )
        return f"{self.name}:{rendered}"

    def to_string(self) -> str:
        return self.label

    def to_dict(self) -> dict:
        """JSON-able form; feeds cache keys, so registry-independent."""
        return {"name": self.name, "params": self.params_dict}

    @property
    def is_reference(self) -> bool:
        """True for the byte-identical reference engine (``event``)."""
        return self.name == DEFAULT_ENGINE

    # -- resolution ----------------------------------------------------
    def validate(self, registry: "EngineRegistry | None" = None) -> None:
        """Check name and params against the registry; raise otherwise."""
        (registry or REGISTRY).entry(self.name).check_params(self.params_dict)

    def build(self, registry: "EngineRegistry | None" = None) -> SimEngine:
        """Resolve to a ready :class:`SimEngine` instance (validated)."""
        entry = (registry or REGISTRY).entry(self.name)
        entry.check_params(self.params_dict)
        engine = entry.cls(**self.params_dict)
        engine.spec = self  # type: ignore[attr-defined]
        return engine


#: The spec every un-specified simulation resolves to.
DEFAULT_ENGINE_SPEC = EngineSpec(DEFAULT_ENGINE)


#: One keyword parameter a registered engine's constructor accepts —
#: the shared :class:`~repro.specs.SpecParam` (same table the defense
#: registry uses, so listings and validation can never diverge).
EngineParam = SpecParam


@dataclass(frozen=True)
class RegisteredEngine:
    """Registry entry: the engine class plus its parameter table."""

    name: str
    cls: type[SimEngine]
    summary: str = ""
    params: tuple[EngineParam, ...] = field(default=())

    def check_params(self, params: Mapping[str, object]) -> None:
        check_params("engine", self.name, self.params, params)


def _introspect_params(cls: type[SimEngine]) -> tuple[EngineParam, ...]:
    """Parameter table from the engine constructor (skipping ``self``)."""
    if cls.__init__ is object.__init__:
        return ()  # parameterless engine: no constructor declared
    return introspect_params(
        cls.__init__, skip=1, kind="engine", owner=repr(cls)
    )


class EngineRegistry:
    """Name → :class:`RegisteredEngine` map with duplicate rejection."""

    def __init__(self) -> None:
        self._entries: dict[str, RegisteredEngine] = {}

    def register(
        self, name: str, summary: str = ""
    ) -> Callable[[type[SimEngine]], type[SimEngine]]:
        """Class decorator registering a :class:`SimEngine` under ``name``.

        Constructor keyword parameters (introspected from ``__init__``)
        become the spec's valid params.
        """
        if not name:
            raise ConfigError("engine name must be non-empty")

        def decorator(cls: type[SimEngine]) -> type[SimEngine]:
            if name in self._entries:
                raise ConfigError(
                    f"engine {name!r} is already registered "
                    f"(by {self._entries[name].cls!r})"
                )
            if not (isinstance(cls, type) and issubclass(cls, SimEngine)):
                raise ConfigError(
                    f"@register_engine({name!r}) needs a SimEngine "
                    f"subclass, got {cls!r}"
                )
            cls.name = name
            self._entries[name] = RegisteredEngine(
                name=name,
                cls=cls,
                summary=summary,
                params=_introspect_params(cls),
            )
            return cls

        return decorator

    def entry(self, name: str) -> RegisteredEngine:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "(none)"
            raise ReproError(
                f"unknown engine {name!r}; registered engines: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def entries(self) -> tuple[RegisteredEngine, ...]:
        return tuple(self._entries[name] for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide registry every un-scoped resolution consults.
REGISTRY = EngineRegistry()

#: Module-level decorator bound to the global registry (the public API).
register_engine = REGISTRY.register


def registered_engines() -> tuple[RegisteredEngine, ...]:
    """All globally registered engines, sorted by name."""
    return REGISTRY.entries()


def resolve_engine(
    engine: "EngineSpec | str | None",
    registry: EngineRegistry | None = None,
) -> EngineSpec:
    """Normalize any engine designator to a validated :class:`EngineSpec`.

    ``None`` resolves to the reference :data:`DEFAULT_ENGINE_SPEC`;
    strings use the ``name[:k=v,...]`` CLI syntax.
    """
    if engine is None:
        spec = DEFAULT_ENGINE_SPEC
    elif isinstance(engine, EngineSpec):
        spec = engine
    elif isinstance(engine, str):
        spec = EngineSpec.from_string(engine)
    else:
        raise ConfigError(
            f"cannot resolve {engine!r} to an engine; pass an EngineSpec "
            "or a 'name:key=value' string"
        )
    spec.validate(registry)
    return spec
