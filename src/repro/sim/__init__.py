"""Simulation façade: event engine, defense factories, experiment runners."""

from repro.sim.bandwidth import (
    BandwidthResult,
    analytical_bandwidth_reduction,
    bandwidth_reduction,
    run_bandwidth_attack,
)
from repro.engine import EventQueue
from repro.sim.factory import (
    baseline_factory,
    factory_for_variant,
    moat_factory,
    panopticon_factory,
    qprac_factory,
)
from repro.sim.runner import (
    DEFAULT_ENTRIES,
    EVALUATED_VARIANTS,
    VariantComparison,
    build_system,
    run_variant_comparison,
    simulate_baseline,
    simulate_workload,
)

__all__ = [
    "BandwidthResult",
    "analytical_bandwidth_reduction",
    "bandwidth_reduction",
    "run_bandwidth_attack",
    "EventQueue",
    "baseline_factory",
    "factory_for_variant",
    "moat_factory",
    "panopticon_factory",
    "qprac_factory",
    "DEFAULT_ENTRIES",
    "EVALUATED_VARIANTS",
    "VariantComparison",
    "build_system",
    "run_variant_comparison",
    "simulate_baseline",
    "simulate_workload",
]
