"""Simulation façade: pluggable engines, defense factories, experiment runners."""

from repro.sim.bandwidth import (
    BandwidthResult,
    analytical_bandwidth_reduction,
    bandwidth_reduction,
    run_bandwidth_attack,
)
from repro.engine import EventQueue
from repro.sim.engines import (
    DEFAULT_ENGINE,
    EngineSpec,
    SimEngine,
    register_engine,
    registered_engines,
    resolve_engine,
)
from repro.sim.factory import (
    baseline_factory,
    factory_for_variant,
    moat_factory,
    panopticon_factory,
    qprac_factory,
)
from repro.sim.runner import (
    DEFAULT_ENTRIES,
    EVALUATED_VARIANTS,
    VariantComparison,
    build_system,
    run_variant_comparison,
    simulate_baseline,
    simulate_workload,
)

__all__ = [
    "BandwidthResult",
    "analytical_bandwidth_reduction",
    "bandwidth_reduction",
    "run_bandwidth_attack",
    "DEFAULT_ENGINE",
    "EngineSpec",
    "EventQueue",
    "SimEngine",
    "register_engine",
    "registered_engines",
    "resolve_engine",
    "baseline_factory",
    "factory_for_variant",
    "moat_factory",
    "panopticon_factory",
    "qprac_factory",
    "DEFAULT_ENTRIES",
    "EVALUATED_VARIANTS",
    "VariantComparison",
    "build_system",
    "run_variant_comparison",
    "simulate_baseline",
    "simulate_workload",
]
