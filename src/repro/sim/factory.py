"""Legacy defense-factory helpers, now thin wrappers over the registry.

The construction logic for every defense lives in
:mod:`repro.defenses.builtin`; these helpers survive for callers written
against the original factory API and simply resolve the matching
:class:`~repro.defenses.DefenseSpec`.  New code should pass a spec (or
its string form) to :func:`repro.sim.runner.simulate_workload` directly.

Registry-resolved factories carry their spec as a ``spec`` attribute, so
results from factory-based runs are labeled with the real defense name
rather than ``"custom"``.  The one exception is ``qprac_factory(None)``,
whose variant is only known per-config at bank-construction time; the
default simulation path labels those runs from ``config.variant``
instead.
"""

from __future__ import annotations

from repro.controller.memctrl import DefenseFactory
from repro.core.defense import BankDefense
from repro.defenses import REGISTRY, DefenseSpec
from repro.params import MitigationVariant, SystemConfig


def baseline_factory() -> DefenseFactory:
    """The paper's non-secure baseline: PRAC timings, no ABO mitigation."""
    return DefenseSpec.of("baseline").factory()


def qprac_factory(variant: MitigationVariant | None = None) -> DefenseFactory:
    """QPRAC banks in the requested policy variant.

    When ``variant`` is None the config's own ``variant`` field is used,
    so a single factory serves every sweep.
    """
    if variant is not None:
        return DefenseSpec.of(variant.value).factory()

    def make(bank_index: int, config: SystemConfig) -> BankDefense:
        return REGISTRY.entry(config.variant.value).builder(bank_index, config)

    return make


def moat_factory(
    proactive_every_n_refs: int | None = None,
) -> DefenseFactory:
    """MOAT banks (Section VII-A comparison): ETH = N_BO / 2."""
    params = {}
    if proactive_every_n_refs is not None:
        params["proactive_every_n_refs"] = proactive_every_n_refs
    return DefenseSpec.of("moat", **params).factory()


def panopticon_factory(t_bit: int = 6, queue_size: int = 5) -> DefenseFactory:
    """Panopticon banks (for end-to-end runs of the insecure baseline)."""
    return DefenseSpec.of(
        "panopticon", t_bit=t_bit, queue_size=queue_size
    ).factory()


def factory_for_variant(variant: MitigationVariant) -> DefenseFactory:
    """Factory for one of the paper's evaluated QPRAC configurations."""
    return DefenseSpec.of(variant.value).factory()
