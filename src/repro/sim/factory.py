"""Defense factories: build per-bank defense engines for a configuration.

The :class:`~repro.controller.memctrl.MemorySystem` is defense-agnostic;
these factories close over a :class:`~repro.params.SystemConfig` (or
defense-specific parameters) and produce one engine per bank.
"""

from __future__ import annotations

from repro.controller.memctrl import DefenseFactory
from repro.core.defense import BankDefense
from repro.core.moat import MOATBank
from repro.core.null_defense import NullDefense
from repro.core.panopticon import PanopticonBank
from repro.core.qprac import QPRACBank
from repro.params import MitigationVariant, SystemConfig


def baseline_factory() -> DefenseFactory:
    """The paper's non-secure baseline: PRAC timings, no ABO mitigation."""

    def make(_bank_index: int, _config: SystemConfig) -> BankDefense:
        return NullDefense()

    return make


def qprac_factory(variant: MitigationVariant | None = None) -> DefenseFactory:
    """QPRAC banks in the requested policy variant.

    When ``variant`` is None the config's own ``variant`` field is used,
    so a single factory serves every sweep.
    """

    def make(_bank_index: int, config: SystemConfig) -> BankDefense:
        chosen = variant if variant is not None else config.variant
        return QPRACBank(
            config.prac,
            num_rows=config.org.rows_per_bank,
            variant=chosen,
        )

    return make


def moat_factory(
    proactive_every_n_refs: int | None = None,
) -> DefenseFactory:
    """MOAT banks (Section VII-A comparison): ETH = N_BO / 2."""

    def make(_bank_index: int, config: SystemConfig) -> BankDefense:
        return MOATBank(
            n_bo=config.prac.n_bo,
            num_rows=config.org.rows_per_bank,
            blast_radius=config.prac.blast_radius,
            proactive_every_n_refs=proactive_every_n_refs,
        )

    return make


def panopticon_factory(t_bit: int = 6, queue_size: int = 5) -> DefenseFactory:
    """Panopticon banks (for end-to-end runs of the insecure baseline)."""

    def make(_bank_index: int, config: SystemConfig) -> BankDefense:
        return PanopticonBank(
            t_bit=t_bit,
            queue_size=queue_size,
            num_rows=config.org.rows_per_bank,
            blast_radius=config.prac.blast_radius,
        )

    return make


def factory_for_variant(variant: MitigationVariant) -> DefenseFactory:
    """Factory for one of the paper's evaluated QPRAC configurations."""
    return qprac_factory(variant)
