"""Multi-bank performance attack: activation-bandwidth loss (Figure 19).

PRAC's Alert Back-Off can be weaponised: an attacker who hammers rows in
many banks simultaneously triggers a stream of Alerts, and every Alert
stalls banks for the RFM service time (Section VI-E).

The attacker modelled here is the paper's multi-bank pool attacker:

* in every bank of the attacked rank it cycles round-robin over a pool of
  rows, so all pool rows climb towards N_BO together (bank-level
  parallelism makes the climb tRRD-limited, not tRC-limited);
* once rows start crossing N_BO the rank sustains the maximum Alert rate
  the ABO protocol allows, each Alert costing the 180 ns window plus
  ``N_mit x tRFM`` of blackout.

Bandwidth is measured *after* a warm-up window so the pool-building phase
does not dilute the steady-state number.  The RFM scope decides the blast
area of each Alert: ``RFMab`` stalls all banks of the rank, ``RFMsb`` one
bank per bank group, ``RFMpb`` only the alerting bank — reproducing the
paper's series.  Proactive mitigation drains the attacker's pool while it
is still being built, which is why it rescues high N_BO configurations
(climbing to 64+ takes about one proactive mitigation per tREFI of
per-bank effort — the same ``N_BO vs 67`` arithmetic as Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.memctrl import DefenseFactory, MemorySystem
from repro.dram.address import AddressMapper
from repro.engine import EventQueue
from repro.errors import ConfigError
from repro.params import RfmScope, SystemConfig, default_config
from repro.sim.factory import baseline_factory, qprac_factory


@dataclass(frozen=True)
class BandwidthResult:
    """Outcome of one bandwidth-attack run (steady-state window only)."""

    acts: int
    alerts: int
    duration_ns: float

    @property
    def acts_per_us(self) -> float:
        return self.acts / (self.duration_ns / 1000.0)

    def reduction_vs(self, baseline: "BandwidthResult") -> float:
        """Fractional activation-bandwidth loss against a baseline run."""
        if baseline.acts <= 0:
            raise ConfigError("baseline attack run produced no activations")
        return max(0.0, 1.0 - self.acts / baseline.acts)


def run_bandwidth_attack(
    config: SystemConfig | None = None,
    defense_factory: DefenseFactory | None = None,
    measure_ns: float = 400_000.0,
    warmup_ns: float | None = None,
    pool_rows_per_bank: int = 24,
    attack_ranks: int = 1,
    targets: list[list[int]] | None = None,
) -> BandwidthResult:
    """Closed-loop pool attack on every bank of ``attack_ranks`` ranks.

    Each bank cycles over ``pool_rows_per_bank`` rows; a completed request
    immediately enqueues the next.  Returns activations achieved within
    the measurement window (after ``warmup_ns``, which defaults to the
    time the pool needs to climb to N_BO plus margin).

    ``targets`` optionally replaces the default strided pool with
    explicit per-bank address pools (e.g. from
    :func:`repro.attacks.bandwidth_targets`); ``pool_rows_per_bank`` and
    ``attack_ranks`` only shape the default pool and the warm-up
    estimate then.
    """
    config = config or default_config()
    factory = defense_factory or qprac_factory()
    events = EventQueue()
    memory = MemorySystem(config, events, factory)
    mapper = AddressMapper(config.org)
    org = config.org
    row_stride = 2 * config.prac.blast_radius + 2

    if targets is None:
        ranks_to_attack = min(attack_ranks, org.channels * org.ranks)
        targets = []
        for rank_index in range(ranks_to_attack):
            channel = rank_index // org.ranks
            rank = rank_index % org.ranks
            for bg in range(org.bankgroups):
                for bank in range(org.banks_per_group):
                    addrs = [
                        mapper.compose(
                            row=(i * row_stride) % org.rows_per_bank,
                            column=0,
                            channel=channel,
                            rank=rank,
                            bankgroup=bg,
                            bank=bank,
                        )
                        for i in range(pool_rows_per_bank)
                    ]
                    targets.append(addrs)
    if not targets or any(not addrs for addrs in targets):
        raise ConfigError("attack targets must be non-empty per bank")

    if warmup_ns is None:
        # Pool climb time: each bank serves one ACT per (banks * tRRD) at
        # rank saturation; a pool row is visited once per pool rotation.
        banks_per_rank = org.banks_per_rank
        per_bank_act_ns = banks_per_rank * config.timing.t_rrd
        deepest_pool = max(len(addrs) for addrs in targets)
        warmup_ns = (
            1.5 * config.prac.n_bo * deepest_pool * per_bank_act_ns
        )

    cursors = [0] * len(targets)
    end_ns = warmup_ns + measure_ns

    def make_pump(slot: int):
        pool = targets[slot]
        pool_len = len(pool)

        def pump(now: float) -> None:
            if now >= end_ns:
                return
            cursors[slot] += 1
            addr = pool[cursors[slot] % pool_len]
            memory.enqueue(addr, False, now, callback=pump)

        return pump

    for slot, addrs in enumerate(targets):
        memory.enqueue(addrs[0], False, 0.0, callback=make_pump(slot))

    window = {"acts": 0, "alerts": 0}

    def snapshot(_now: float) -> None:
        window["acts"] = memory.stats.acts
        window["alerts"] = memory.stats.alerts

    events.schedule(warmup_ns, snapshot)
    events.run(until=end_ns)
    return BandwidthResult(
        acts=memory.stats.acts - window["acts"],
        alerts=memory.stats.alerts - window["alerts"],
        duration_ns=measure_ns,
    )


def analytical_bandwidth_reduction(
    n_bo: int,
    scope: "RfmScope | None" = None,
    proactive: bool = False,
    config: SystemConfig | None = None,
) -> float:
    """The paper's worst-case analytical bandwidth-loss model (Figure 19).

    The analytical attacker climbs one fresh row to N_BO per Alert, at the
    rank-interleaved activation rate (tRRD across two ranks, ~2.5 ns per
    activation), then pays the Alert service (180 ns window + N_mit RFMs)::

        loss = blocked_per_alert / (climb + blocked_per_alert)

    Proactive mitigation drains the climbing rows at one per tREFI of
    per-bank effort, inflating the climb cost by ``1 / (1 - N_BO / 67)``
    and defeating the attack outright once ``N_BO >= 67`` activations are
    needed per row (the Section IV-C arithmetic).  Scoped RFMs shrink the
    blocked area by ``scope_banks / all_banks``.

    This model reproduces the paper's reported points (93%/62% for plain
    RFMab at N_BO 16/128; 91%/77%/~10%/0% for RFMab+Proactive at
    16/32/64/128); the event-driven simulation in
    :func:`run_bandwidth_attack` is *more* favourable to QPRAC because it
    charges the attacker for opportunistically-mitigated pool rows.
    """
    config = config or default_config()
    timing = config.timing
    prac = config.prac
    scope = scope or prac.rfm_scope
    if n_bo < 1:
        raise ConfigError(f"n_bo must be >= 1, got {n_bo}")
    ranks = max(1, config.org.ranks)
    act_ns = timing.t_rrd / ranks
    climb_ns = n_bo * act_ns
    if proactive:
        drain_ratio = n_bo / timing.acts_per_trefi
        if drain_ratio >= 1.0:
            return 0.0
        climb_ns /= 1.0 - drain_ratio
    service_ns = timing.t_abo_act + prac.n_mit * timing.t_rfm
    if scope is RfmScope.ALL_BANK:
        fraction = 1.0
    elif scope is RfmScope.SAME_BANK:
        fraction = 1.0 / config.org.banks_per_group
    else:
        fraction = 1.0 / config.org.banks_per_rank
    blocked_ns = service_ns * fraction
    return blocked_ns / (climb_ns + service_ns)


def bandwidth_reduction(
    config: SystemConfig,
    measure_ns: float = 400_000.0,
    baseline: BandwidthResult | None = None,
    pool_rows_per_bank: int = 24,
) -> tuple[float, BandwidthResult, BandwidthResult]:
    """Convenience wrapper: (reduction, defended_run, baseline_run)."""
    if baseline is None:
        baseline = run_bandwidth_attack(
            config,
            defense_factory=baseline_factory(),
            measure_ns=measure_ns,
            pool_rows_per_bank=pool_rows_per_bank,
        )
    defended = run_bandwidth_attack(
        config, measure_ns=measure_ns, pool_rows_per_bank=pool_rows_per_bank
    )
    return defended.reduction_vs(baseline), defended, baseline
