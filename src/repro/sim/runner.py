"""Experiment façade: one-call simulation of workloads and variant sweeps.

This is the API the benchmarks and examples use::

    from repro.sim import simulate_workload, run_variant_comparison

    result = simulate_workload("429.mcf", variant=MitigationVariant.QPRAC)
    table = run_variant_comparison(["429.mcf", "470.lbm"], n_entries=20_000)

Every run builds four homogeneous copies of the named workload (the
paper's methodology) with per-core seeds, executes them to completion on
the event-driven memory system, and reports a
:class:`~repro.cpu.system.SystemResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.memctrl import DefenseFactory
from repro.cpu.system import MulticoreSystem, SystemResult
from repro.params import MitigationVariant, SystemConfig, default_config
from repro.sim.factory import baseline_factory, qprac_factory
from repro.workloads.suites import workload as lookup_workload
from repro.workloads.synthetic import WorkloadSpec, generate_trace

#: Trace length (memory accesses per core) used when none is requested.
#: Long enough to span dozens of tREFI intervals at memory-intensive rates.
DEFAULT_ENTRIES = 20_000

#: The five evaluated designs of Section V, in the paper's order.
EVALUATED_VARIANTS: tuple[MitigationVariant, ...] = (
    MitigationVariant.QPRAC_NOOP,
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE,
    MitigationVariant.QPRAC_PROACTIVE_EA,
    MitigationVariant.QPRAC_IDEAL,
)


def _resolve_spec(workload: str | WorkloadSpec) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    return lookup_workload(workload)


def build_system(
    workload: str | WorkloadSpec,
    config: SystemConfig | None = None,
    defense_factory: DefenseFactory | None = None,
    n_entries: int = DEFAULT_ENTRIES,
    seed: int = 0,
) -> MulticoreSystem:
    """Construct (but do not run) a four-copy homogeneous system."""
    config = config or default_config()
    spec = _resolve_spec(workload)
    traces = [
        generate_trace(spec, n_entries, config.org, seed=seed * 1000 + core)
        for core in range(config.cpu.cores)
    ]
    factory = defense_factory or qprac_factory()
    return MulticoreSystem(config, traces, factory, workload_name=spec.name)


def simulate_workload(
    workload: str | WorkloadSpec,
    config: SystemConfig | None = None,
    variant: MitigationVariant | None = None,
    defense_factory: DefenseFactory | None = None,
    n_entries: int = DEFAULT_ENTRIES,
    seed: int = 0,
) -> SystemResult:
    """Simulate one workload under one defense configuration.

    ``variant`` selects a QPRAC policy; pass ``defense_factory`` instead to
    run a non-QPRAC defense (baseline, MOAT, PrIDE, Mithril).
    """
    config = config or default_config()
    if variant is not None:
        config = config.with_variant(variant)
    system = build_system(
        workload,
        config,
        defense_factory=defense_factory,
        n_entries=n_entries,
        seed=seed,
    )
    name = None
    if defense_factory is not None and variant is None:
        name = "custom"
    elif variant is not None:
        name = variant.value
    return system.run(variant_name=name)


def simulate_baseline(
    workload: str | WorkloadSpec,
    config: SystemConfig | None = None,
    n_entries: int = DEFAULT_ENTRIES,
    seed: int = 0,
) -> SystemResult:
    """The paper's non-secure baseline (PRAC timings, no ABO)."""
    result = simulate_workload(
        workload,
        config=config,
        defense_factory=baseline_factory(),
        n_entries=n_entries,
        seed=seed,
    )
    result.variant = "baseline"
    return result


@dataclass
class VariantComparison:
    """Per-workload slowdowns of each variant against the shared baseline."""

    workloads: list[str]
    baseline: dict[str, SystemResult]
    results: dict[str, dict[str, SystemResult]] = field(default_factory=dict)

    def slowdown_pct(self, variant: str, workload: str) -> float:
        return self.results[variant][workload].slowdown_pct_vs(
            self.baseline[workload]
        )

    def mean_slowdown_pct(self, variant: str) -> float:
        values = [
            self.slowdown_pct(variant, w) for w in self.workloads
        ]
        return sum(values) / len(values) if values else 0.0

    def mean_alerts_per_trefi(self, variant: str) -> float:
        values = [
            self.results[variant][w].alerts_per_trefi for w in self.workloads
        ]
        return sum(values) / len(values) if values else 0.0


def run_variant_comparison(
    workloads: list[str | WorkloadSpec],
    variants: tuple[MitigationVariant, ...] = EVALUATED_VARIANTS,
    config: SystemConfig | None = None,
    n_entries: int = DEFAULT_ENTRIES,
    seed: int = 0,
    jobs: int = 1,
    store=None,
) -> VariantComparison:
    """Figure 14/15 style sweep: all variants over a workload list.

    Routed through the :mod:`repro.exp` orchestrator: ``jobs`` fans the
    grid out over worker processes, and passing a
    :class:`~repro.exp.cache.ResultStore` as ``store`` reuses (and
    persists) results across invocations.  Output is identical at every
    ``jobs`` value.
    """
    # Imported here: repro.exp builds on this module's simulate_* calls.
    from repro.exp import SweepSpec, run_sweep

    spec = SweepSpec(
        workloads=tuple(_resolve_spec(w) for w in workloads),
        variants=tuple(variants),
        config=config or default_config(),
        include_baseline=True,
        n_entries=n_entries,
        seed=seed,
    )
    return run_sweep(spec, jobs=jobs, store=store).comparison()
