"""Experiment façade: one-call simulation of workloads and defense sweeps.

This is the API the benchmarks and examples use::

    from repro.sim import simulate_workload, run_variant_comparison

    result = simulate_workload("429.mcf", defense="qprac")
    result = simulate_workload("429.mcf", defense="moat:proactive_every_n_refs=4")
    table = run_variant_comparison(["429.mcf", "470.lbm"], n_entries=20_000)

Any defense is selected by a :class:`~repro.defenses.DefenseSpec` (or its
string / :class:`~repro.params.MitigationVariant` shorthand), resolved
against the defense registry; results carry the resolved spec's label, so
distinct defenses are never conflated in tables or cache rows.

Execution is equally pluggable: ``engine=`` selects a registered
:class:`~repro.sim.engines.SimEngine` by
:class:`~repro.sim.engines.EngineSpec` (``"event"`` — the byte-identical
reference — by default; ``"epoch"`` or ``"epoch:trefi_chunk=4"`` for the
batched tier).  Every run builds four homogeneous copies of the named
workload (the paper's methodology) with per-core seeds, executes them to
completion on the selected engine, and reports a
:class:`~repro.cpu.system.SystemResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.memctrl import DefenseFactory
from repro.cpu.system import MulticoreSystem, SystemResult
from repro.defenses import DefenseSpec, resolve_defense
from repro.errors import ConfigError
from repro.params import MitigationVariant, SystemConfig, default_config
from repro.sim.engines import EngineSpec, build_event_system, resolve_engine
from repro.sim.factory import qprac_factory
from repro.workloads.suites import workload as lookup_workload
from repro.workloads.synthetic import WorkloadSpec

#: Trace length (memory accesses per core) used when none is requested.
#: Long enough to span dozens of tREFI intervals at memory-intensive rates.
DEFAULT_ENTRIES = 20_000

#: The five evaluated designs of Section V, in the paper's order.
EVALUATED_VARIANTS: tuple[MitigationVariant, ...] = (
    MitigationVariant.QPRAC_NOOP,
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE,
    MitigationVariant.QPRAC_PROACTIVE_EA,
    MitigationVariant.QPRAC_IDEAL,
)


def _resolve_spec(workload: str | WorkloadSpec) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    return lookup_workload(workload)


def _resolve_workload_or_attack(workload, attack) -> WorkloadSpec:
    """Exactly one of ``workload``/``attack`` selects the trace source.

    ``attack`` resolves through the attack registry to an
    :class:`~repro.attacks.AttackWorkload`, which the engines execute
    through the ordinary workload path.
    """
    if (workload is None) == (attack is None):
        raise ConfigError("pass exactly one of workload= or attack=")
    if attack is not None:
        from repro.attacks import attack_workload

        return attack_workload(attack)
    return _resolve_spec(workload)


def build_system(
    workload: str | WorkloadSpec,
    config: SystemConfig | None = None,
    defense_factory: DefenseFactory | None = None,
    n_entries: int = DEFAULT_ENTRIES,
    seed: int = 0,
    telemetry=None,
) -> MulticoreSystem:
    """Construct (but do not run) a four-copy homogeneous event system.

    This is inherently an ``event``-engine helper — the handle it
    returns *is* the event-driven system; batched engines have no
    equivalent object.  Kept public for the bench harness and tests.
    """
    config = config or default_config()
    spec = _resolve_spec(workload)
    factory = defense_factory or qprac_factory()
    return build_event_system(
        spec, config, factory, n_entries, seed, telemetry=telemetry
    )


def simulate_workload(
    workload: str | WorkloadSpec | None = None,
    config: SystemConfig | None = None,
    defense: DefenseSpec | MitigationVariant | str | None = None,
    variant: MitigationVariant | None = None,
    defense_factory: DefenseFactory | None = None,
    n_entries: int = DEFAULT_ENTRIES,
    seed: int = 0,
    engine: EngineSpec | str | None = None,
    telemetry=None,
    attack=None,
) -> SystemResult:
    """Simulate one workload — or one attack pattern — under one defense.

    ``defense`` selects any registered defense — a
    :class:`~repro.defenses.DefenseSpec`, a ``"name:key=value"`` string,
    or a :class:`MitigationVariant` (shim for the QPRAC policies).
    ``variant`` remains as a QPRAC-only alias, and ``defense_factory``
    accepts a raw per-bank factory for unregistered designs; results from
    registry-built factories are still labeled with their spec's name
    (``"custom"`` only when the factory is truly anonymous).

    ``attack`` names a registered attack pattern (an
    :class:`~repro.attacks.AttackSpec` or ``"name:k=v"`` string) to run
    *instead of* a workload: the pattern's deterministic trace flows
    through the selected engine exactly like a workload trace.  Exactly
    one of ``workload``/``attack`` must be given.

    ``engine`` selects the simulation engine by
    :class:`~repro.sim.engines.EngineSpec` (or its string form); ``None``
    runs the byte-identical ``event`` reference.

    ``telemetry`` attaches a :class:`~repro.obs.Telemetry` recorder to
    the run (see :mod:`repro.obs`); results are byte-identical with or
    without one.  The keyword is only forwarded when a recorder is
    enabled, so externally registered engines that predate the seam
    keep working untouched.
    """
    config = config or default_config()
    selectors = (defense, variant, defense_factory)
    if sum(s is not None for s in selectors) > 1:
        raise ConfigError(
            "pass only one of defense=, variant= or defense_factory="
        )
    spec: DefenseSpec | None = None
    if defense is not None:
        spec = resolve_defense(defense)
    elif variant is not None:
        spec = resolve_defense(variant)
    elif defense_factory is not None:
        spec = getattr(defense_factory, "spec", None)

    if spec is not None and spec.variant is not None:
        config = config.with_variant(spec.variant)
    factory = defense_factory if defense_factory is not None else (
        spec.factory() if spec is not None else qprac_factory()
    )
    if spec is not None:
        name = spec.label
    elif defense_factory is not None:
        name = "custom"
    else:
        name = None  # default QPRAC factory: label by config.variant
    sim = resolve_engine(engine).build()
    kwargs = {}
    if telemetry is not None and getattr(telemetry, "enabled", False):
        kwargs["telemetry"] = telemetry
    return sim.simulate(
        _resolve_workload_or_attack(workload, attack),
        config,
        factory,
        n_entries=n_entries,
        seed=seed,
        variant_name=name,
        **kwargs,
    )


def simulate_baseline(
    workload: str | WorkloadSpec,
    config: SystemConfig | None = None,
    n_entries: int = DEFAULT_ENTRIES,
    seed: int = 0,
    engine: EngineSpec | str | None = None,
) -> SystemResult:
    """The paper's non-secure baseline (PRAC timings, no ABO)."""
    return simulate_workload(
        workload,
        config=config,
        defense="baseline",
        n_entries=n_entries,
        seed=seed,
        engine=engine,
    )


@dataclass
class VariantComparison:
    """Per-workload slowdowns of each defense against the shared baseline.

    Keys of ``results`` are defense labels
    (:attr:`~repro.defenses.DefenseSpec.label`): QPRAC variants keep
    their historical names (``"qprac"``, ``"qprac+proactive"``, ...) and
    parameterized defenses read like ``"mithril:t_rh=256"``.
    """

    workloads: list[str]
    baseline: dict[str, SystemResult]
    results: dict[str, dict[str, SystemResult]] = field(default_factory=dict)

    def slowdown_pct(self, variant: str, workload: str) -> float:
        return self.results[variant][workload].slowdown_pct_vs(
            self.baseline[workload]
        )

    def mean_slowdown_pct(self, variant: str) -> float:
        values = [
            self.slowdown_pct(variant, w) for w in self.workloads
        ]
        return sum(values) / len(values) if values else 0.0

    def mean_alerts_per_trefi(self, variant: str) -> float:
        values = [
            self.results[variant][w].alerts_per_trefi for w in self.workloads
        ]
        return sum(values) / len(values) if values else 0.0


def run_variant_comparison(
    workloads: list[str | WorkloadSpec],
    variants: tuple[MitigationVariant | DefenseSpec | str, ...] = EVALUATED_VARIANTS,
    config: SystemConfig | None = None,
    n_entries: int = DEFAULT_ENTRIES,
    seed: int = 0,
    jobs: int = 1,
    store=None,
    backend: str = "auto",
    hosts=None,
    engine: EngineSpec | str | None = None,
) -> VariantComparison:
    """Figure 14/15 style sweep: defenses over a workload list.

    ``variants`` accepts any mix of defense designators (QPRAC variants,
    ``"moat"``, ``DefenseSpec.of("pride", t_rh=256)``, ...).  Routed
    through the :mod:`repro.exp` orchestrator: ``jobs`` fans the grid out
    over worker processes, and passing a
    :class:`~repro.exp.cache.ResultStore` as ``store`` reuses (and
    persists) results across invocations.  Output is identical at every
    ``jobs`` value.  ``engine`` selects the simulation engine for every
    job in the grid (cache rows from different engines never mix).
    """
    # Imported here: repro.exp builds on this module's simulate_* calls.
    from repro.exp import SweepSpec, run_sweep

    spec = SweepSpec(
        workloads=tuple(_resolve_spec(w) for w in workloads),
        defenses=tuple(variants),
        config=config or default_config(),
        include_baseline=True,
        n_entries=n_entries,
        seed=seed,
        engine=resolve_engine(engine),
    )
    return run_sweep(spec, jobs=jobs, store=store, backend=backend,
                     hosts=hosts).comparison()
