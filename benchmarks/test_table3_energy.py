"""Table III: energy overhead of the QPRAC designs by PRAC level.

Paper: QPRAC 1.2-1.5%; QPRAC+Proactive 14.6% (a mitigation on every REF
in every bank); QPRAC+Proactive-EA 1.9% — the energy-aware threshold
recovers almost all of the proactive energy while keeping its
performance.
"""

from __future__ import annotations

from conftest import bench_engine, bench_entries, bench_workloads, emit_table

from repro.energy import mitigation_energy_pct
from repro.params import MitigationVariant
from repro.sim import simulate_workload

VARIANTS = (
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE,
    MitigationVariant.QPRAC_PROACTIVE_EA,
)


def test_table3_energy_overhead(benchmark, config):
    names = list(bench_workloads())[:3]
    entries = bench_entries()

    def build():
        table = {}
        for n_mit in (1, 2, 4):
            cfg = config.with_prac(n_mit=n_mit, abo_delay=None)
            for variant in VARIANTS:
                values = []
                for name in names:
                    run = simulate_workload(
                        name, config=cfg, variant=variant,
                        n_entries=entries, engine=bench_engine(),
                    )
                    values.append(mitigation_energy_pct(run, cfg))
                table[(n_mit, variant)] = sum(values) / len(values)
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [f"PRAC-{n_mit}"]
        + [round(table[(n_mit, v)], 2) for v in VARIANTS]
        for n_mit in (1, 2, 4)
    ]
    emit_table(
        "table3",
        "Table III: energy overhead %% "
        "(paper: ~1.2-1.5 / 14.6 / 1.9)",
        ["PRAC level"] + [v.value for v in VARIANTS],
        rows,
    )
    for n_mit in (1, 2, 4):
        qprac = table[(n_mit, MitigationVariant.QPRAC)]
        pro = table[(n_mit, MitigationVariant.QPRAC_PROACTIVE)]
        ea = table[(n_mit, MitigationVariant.QPRAC_PROACTIVE_EA)]
        # The headline ordering: proactive-on-every-REF is an order of
        # magnitude costlier than both QPRAC and the energy-aware design.
        assert ea < pro / 3
        assert qprac < pro / 3
        assert 10.0 < pro < 20.0  # paper: 14.6%
        assert qprac < 3.0
