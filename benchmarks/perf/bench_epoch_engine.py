"""Microbenchmark: the epoch engine vs the event reference, per phase.

Times the reference cell under both engines and breaks the epoch
engine's cost into its three phases (memory construction, the cached
stream preparation, the replay loop), so a regression is attributable
before reaching the full ``python -m repro bench --engine epoch`` gate::

    PYTHONPATH=src python benchmarks/perf/bench_epoch_engine.py
    PYTHONPATH=src python -m cProfile -s tottime benchmarks/perf/bench_epoch_engine.py

Note the stream-cache asterisk: ``_prepare_stream`` is memoized on
(workload, entries, seed, geometry) exactly like trace generation, so
the steady-state epoch cost a defense sweep pays is ``build + replay``;
the cold first cell also pays ``prepare`` once.  Both cold and warm
timings are printed.
"""

from __future__ import annotations

import time

from repro.controller.memctrl import MemStats
from repro.defenses import resolve_defense
from repro.params import default_config
from repro.sim.engines import EngineSpec
from repro.sim.engines.epoch import EpochEngine, _EpochCore, _prepare_stream
from repro.workloads.suites import workload as lookup_workload

WORKLOAD = "429.mcf"
DEFENSE = "qprac"
N_ENTRIES = 20_000
REPEATS = 3


def main() -> None:
    spec = resolve_defense(DEFENSE)
    config = default_config()
    if spec.variant is not None:
        config = config.with_variant(spec.variant)
    workload = lookup_workload(WORKLOAD)

    def run_cell(engine: str) -> float:
        best = float("inf")
        for _ in range(REPEATS):
            sim = EngineSpec.from_string(engine).build()
            started = time.perf_counter()
            sim.simulate(
                workload, config, spec.factory(),
                n_entries=N_ENTRIES, seed=0, variant_name=spec.label,
            )
            best = min(best, time.perf_counter() - started)
        return best

    # Cold: include one fresh stream preparation in the first epoch run.
    _prepare_stream.cache_clear()
    cold = float("inf")
    sim = EpochEngine()
    started = time.perf_counter()
    sim.simulate(workload, config, spec.factory(), n_entries=N_ENTRIES)
    cold = time.perf_counter() - started

    event_s = run_cell("event")
    epoch_s = run_cell("epoch")

    # Phase breakdown (warm stream cache).
    engine = EpochEngine()
    t0 = time.perf_counter()
    banks, ranks = engine._build_memory(config, spec.factory())
    t1 = time.perf_counter()
    stream = _prepare_stream(
        workload, N_ENTRIES, 0, config.org, config.cpu
    )
    t2 = time.perf_counter()
    cores = [
        _EpochCore(
            reqs=stream.reqs[c],
            load_inst=stream.load_inst[c],
            front_total=stream.front_total[c],
            total_instructions=stream.total_instructions[c],
        )
        for c in range(len(stream.reqs))
    ]
    engine._replay(cores, banks, ranks, config, MemStats())
    t3 = time.perf_counter()

    requests = sum(len(r) for r in stream.reqs)
    print(
        f"{WORKLOAD} x {DEFENSE} ({N_ENTRIES} entries/core, "
        f"{requests} DRAM requests):"
    )
    print(f"  event engine:        {event_s:.3f}s (best of {REPEATS})")
    print(f"  epoch engine (warm): {epoch_s:.3f}s "
          f"-> x{event_s / epoch_s:.2f} vs event")
    print(f"  epoch engine (cold): {cold:.3f}s "
          f"-> x{event_s / cold:.2f} vs event")
    print(
        f"  epoch phases: build {t1 - t0:.3f}s, "
        f"prepare (cached across defenses) {t2 - t1:.3f}s, "
        f"replay {t3 - t2:.3f}s "
        f"({requests / max(1e-9, t3 - t2):,.0f} requests/s)"
    )


if __name__ == "__main__":
    main()
