"""Microbenchmark: PSQ observe/top throughput, incremental vs reference.

The incremental queue caches its extremes; the retained reference
implementation scans per call.  The simulator calls ``observe`` +
``max_count`` once per DRAM activation, so this pair *is* the per-ACT
tracking cost.
"""

from __future__ import annotations

import random
import time

from repro.core.psq import PriorityServiceQueue, ReferencePriorityServiceQueue


def drive(queue, ops: list[tuple[int, int]]) -> float:
    observe = queue.observe
    max_count = queue.max_count
    started = time.perf_counter()
    for row, count in ops:
        observe(row, count)
        max_count()
    return len(ops) / (time.perf_counter() - started)


def make_ops(n: int = 200_000, rows: int = 64, seed: int = 0):
    """The simulator's shape: per-row counters that only count up."""
    rng = random.Random(seed)
    counters = [0] * rows
    ops = []
    for _ in range(n):
        row = rng.randrange(rows)
        counters[row] += 1
        ops.append((row, counters[row]))
    return ops


def main() -> None:
    ops = make_ops()
    for size in (5, 16, 64):
        fast = max(
            drive(PriorityServiceQueue(size), ops) for _ in range(3)
        )
        ref = max(
            drive(ReferencePriorityServiceQueue(size), ops)
            for _ in range(3)
        )
        print(
            f"size {size:3d}: incremental {fast:12,.0f} ops/s   "
            f"reference {ref:12,.0f} ops/s   ({fast / ref:.2f}x)"
        )


if __name__ == "__main__":
    main()
