"""Microbenchmark: the reference cell end to end, with events/sec.

This is one cell of ``python -m repro bench`` kept as a minimal script
so it stays trivially profileable::

    PYTHONPATH=src python -m cProfile -s tottime benchmarks/perf/bench_end_to_end.py
"""

from __future__ import annotations

import time

from repro.defenses import resolve_defense
from repro.params import default_config
from repro.sim.runner import build_system

WORKLOAD = "429.mcf"
DEFENSE = "qprac"
N_ENTRIES = 20_000
REPEATS = 3


def main() -> None:
    spec = resolve_defense(DEFENSE)
    config = default_config()
    if spec.variant is not None:
        config = config.with_variant(spec.variant)
    best = float("inf")
    events = 0
    for _ in range(REPEATS):
        started = time.perf_counter()
        system = build_system(
            WORKLOAD, config, defense_factory=spec.factory(),
            n_entries=N_ENTRIES,
        )
        system.run(variant_name=spec.label)
        elapsed = time.perf_counter() - started
        events = system.events.events_processed
        best = min(best, elapsed)
    print(
        f"{WORKLOAD} x {DEFENSE} ({N_ENTRIES} entries/core): "
        f"{best:.3f}s, {events} events, {events / best:,.0f} events/s"
    )


if __name__ == "__main__":
    main()
