"""Microbenchmark: synthetic trace generation (vectorized encode)."""

from __future__ import annotations

import time

from repro.params import DRAMOrganization
from repro.workloads.suites import workload
from repro.workloads.synthetic import _generate_trace_cached, generate_trace


def main() -> None:
    org = DRAMOrganization()
    for name in ("429.mcf", "470.lbm", "ycsb-a"):
        spec = workload(name)
        best = float("inf")
        for repeat in range(5):
            _generate_trace_cached.cache_clear()  # honest cold-start cost
            started = time.perf_counter()
            trace = generate_trace(spec, 20_000, org, seed=repeat)
            best = min(best, time.perf_counter() - started)
        rate = len(trace) / best
        print(f"{name:10s}: {best * 1e3:7.2f} ms / 20k entries "
              f"({rate:12,.0f} entries/s)")


if __name__ == "__main__":
    main()
