"""Microbenchmark: EventQueue scheduling and drain throughput."""

from __future__ import annotations

import time

from repro.engine import EventQueue


def bench_future_heavy(n: int = 200_000) -> float:
    """Future-time schedule/pop churn (the simulator's dominant shape)."""
    q = EventQueue()

    def cb(now: float) -> None:
        if q.events_processed < n:
            q.schedule_future(now + 1.0, cb)

    q.schedule(0.0, cb)
    started = time.perf_counter()
    q.run()
    return q.events_processed / (time.perf_counter() - started)


def bench_immediate_heavy(n: int = 200_000) -> float:
    """Schedule-at-now events: exercises the immediate-deque fast path."""
    q = EventQueue()
    remaining = [n]

    def cb(now: float) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            q.schedule(now, cb)  # clamped to now -> deque, not heap

    q.schedule(0.0, cb)
    started = time.perf_counter()
    q.run()
    return q.events_processed / (time.perf_counter() - started)


def bench_drain_until(n: int = 200_000) -> float:
    """The system driver's tight loop (counter-terminated drain).

    ``drain_until`` batches its ``events_processed`` accounting, so the
    chain tracks its own count.
    """
    q = EventQueue()
    counter = [0]
    fired = [0]

    def cb(now: float) -> None:
        fired[0] += 1
        if fired[0] < n:
            q.schedule_future(now + 1.0, cb)
        else:
            counter[0] = 1

    q.schedule(0.0, cb)
    started = time.perf_counter()
    processed = q.drain_until(counter, 1, n + 10)
    return processed / (time.perf_counter() - started)


def main() -> None:
    for name, fn in (
        ("future-heavy run()", bench_future_heavy),
        ("immediate-deque run()", bench_immediate_heavy),
        ("drain_until()", bench_drain_until),
    ):
        best = max(fn() for _ in range(3))
        print(f"{name:24s} {best:12,.0f} events/s")


if __name__ == "__main__":
    main()
