"""Microbenchmark: physical-address decode forms.

``decode()`` builds a frozen ``DramAddress`` per call; ``decode_flat()``
returns a memoized plain tuple with the flat bank index precomputed.
The controller's ``enqueue`` goes further and inlines the bit slicing
entirely (the LLC filters re-touches, so its address stream is nearly
all first-sight misses); this benchmark shows why each form exists.
"""

from __future__ import annotations

import random
import time

from repro.dram.address import AddressMapper
from repro.params import DRAMOrganization


def main() -> None:
    org = DRAMOrganization()
    rng = random.Random(0)
    max_addr = 1 << AddressMapper(org).address_bits
    unique = [rng.randrange(max_addr) for _ in range(100_000)]
    reused = [rng.choice(unique[:64]) for _ in range(100_000)]

    for label, addrs in (("unique-heavy", unique), ("reuse-heavy", reused)):
        mapper = AddressMapper(org)
        started = time.perf_counter()
        for addr in addrs:
            mapper.decode(addr)
        dataclass_rate = len(addrs) / (time.perf_counter() - started)

        mapper = AddressMapper(org)
        decode_flat = mapper.decode_flat
        started = time.perf_counter()
        for addr in addrs:
            decode_flat(addr)
        flat_rate = len(addrs) / (time.perf_counter() - started)

        print(
            f"{label:12s}: decode() {dataclass_rate:12,.0f}/s   "
            f"decode_flat() {flat_rate:12,.0f}/s   "
            f"({flat_rate / dataclass_rate:.2f}x)"
        )


if __name__ == "__main__":
    main()
