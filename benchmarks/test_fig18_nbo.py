"""Figure 18: sensitivity to the Back-Off threshold N_BO.

Paper: QPRAC 2.3% at N_BO=16 falling to <=0.8% at 32+; the proactive
variants <=0.3% at 16 and 0% at 32+.

Routed through the :mod:`repro.exp` orchestrator: one DefenseSpec-keyed
sweep over variants x N_BO override sets, parallel with
``REPRO_BENCH_JOBS`` and fully cached under ``REPRO_BENCH_CACHE``.
"""

from __future__ import annotations

from conftest import bench_engine, bench_entries, bench_workloads, bench_sweep, emit_table

from repro.exp import SweepSpec, mean_slowdown_by_override
from repro.params import MitigationVariant

VARIANTS = (
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE,
    MitigationVariant.QPRAC_PROACTIVE_EA,
)

NBO_VALUES = (16, 32, 64, 128)


def test_fig18_nbo_sensitivity(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()

    def build():
        spec = SweepSpec(
            workloads=tuple(names),
            defenses=VARIANTS,
            overrides=tuple({"n_bo": n_bo} for n_bo in NBO_VALUES),
            config=config,
            include_baseline=False,
            n_entries=entries,
            engine=bench_engine(),
        )
        sweep = bench_sweep(spec)
        table = {}
        for variant in VARIANTS:
            means = mean_slowdown_by_override(sweep, variant.value, baselines)
            for overrides, mean in means.items():
                n_bo = dict(overrides)["n_bo"]
                table[(n_bo, variant)] = mean
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [n_bo] + [round(table[(n_bo, v)], 2) for v in VARIANTS]
        for n_bo in NBO_VALUES
    ]
    emit_table(
        "fig18",
        "Figure 18: slowdown %% vs N_BO (paper: 2.3%% @16 -> <=0.8%% @32+)",
        ["N_BO"] + [v.value for v in VARIANTS],
        rows,
    )
    qprac = {n_bo: table[(n_bo, MitigationVariant.QPRAC)] for n_bo in NBO_VALUES}
    # Lower thresholds cost more; >=32 is cheap.
    assert qprac[16] >= qprac[32] - 0.1
    assert qprac[32] < 1.5 and qprac[64] < 1.0 and qprac[128] < 1.0
    for n_bo in (32, 64, 128):
        assert table[(n_bo, MitigationVariant.QPRAC_PROACTIVE)] < 0.5
        assert table[(n_bo, MitigationVariant.QPRAC_PROACTIVE_EA)] < 0.5
    assert table[(16, MitigationVariant.QPRAC_PROACTIVE)] < qprac[16] + 0.2
