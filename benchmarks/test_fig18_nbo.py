"""Figure 18: sensitivity to the Back-Off threshold N_BO.

Paper: QPRAC 2.3% at N_BO=16 falling to <=0.8% at 32+; the proactive
variants <=0.3% at 16 and 0% at 32+.
"""

from __future__ import annotations

from conftest import bench_entries, bench_workloads, emit_table

from repro.params import MitigationVariant
from repro.sim import simulate_workload

VARIANTS = (
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE,
    MitigationVariant.QPRAC_PROACTIVE_EA,
)


def test_fig18_nbo_sensitivity(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()

    def build():
        table = {}
        for n_bo in (16, 32, 64, 128):
            cfg = config.with_prac(n_bo=n_bo)
            for variant in VARIANTS:
                slow = []
                for name in names:
                    run = simulate_workload(
                        name, config=cfg, variant=variant, n_entries=entries
                    )
                    slow.append(run.slowdown_pct_vs(baselines[name]))
                table[(n_bo, variant)] = sum(slow) / len(slow)
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [n_bo] + [round(table[(n_bo, v)], 2) for v in VARIANTS]
        for n_bo in (16, 32, 64, 128)
    ]
    emit_table(
        "fig18",
        "Figure 18: slowdown %% vs N_BO (paper: 2.3%% @16 -> <=0.8%% @32+)",
        ["N_BO"] + [v.value for v in VARIANTS],
        rows,
    )
    qprac = {n_bo: table[(n_bo, MitigationVariant.QPRAC)] for n_bo in (16, 32, 64, 128)}
    # Lower thresholds cost more; >=32 is cheap.
    assert qprac[16] >= qprac[32] - 0.1
    assert qprac[32] < 1.5 and qprac[64] < 1.0 and qprac[128] < 1.0
    for n_bo in (32, 64, 128):
        assert table[(n_bo, MitigationVariant.QPRAC_PROACTIVE)] < 0.5
        assert table[(n_bo, MitigationVariant.QPRAC_PROACTIVE_EA)] < 0.5
    assert table[(16, MitigationVariant.QPRAC_PROACTIVE)] < qprac[16] + 0.2
