"""Table I: PRAC parameters as per the DDR5 specification."""

from __future__ import annotations

from conftest import emit_table

from repro.params import PRACParams, VALID_NMIT


def test_table1_prac_parameters(benchmark):
    def build():
        rows = []
        p = PRACParams()
        rows.append(["N_BO", "Back-Off Threshold", f"<= T_RH (default {p.n_bo})"])
        rows.append(["N_mit", "Num RFMs on Alert", ", ".join(map(str, VALID_NMIT))])
        rows.append(["ABO_ACT", "Max ACTs from Alert to RFM",
                     f"{p.abo_act} (up to {p.abo_window_ns:.0f} ns)"])
        rows.append(["ABO_Delay", "Min ACTs after RFM to Alert",
                     "Same as N_mit: " + ", ".join(
                         str(PRACParams(n_mit=n).abo_delay) for n in VALID_NMIT)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_table("table1", "Table I: PRAC parameters (DDR5 spec)",
               ["Parameter", "Explanation", "Value"], rows)
    p = PRACParams()
    assert p.abo_act == 3 and p.abo_window_ns == 180.0
    assert VALID_NMIT == (1, 2, 4)
    assert all(PRACParams(n_mit=n).abo_delay == n for n in VALID_NMIT)
