"""Figure 23 (Appendix A): Panopticon with ABO_ACT blocked from toggling.

Paper shape: the target row is hammered purely with Alert-window
activations rotated across banks; unmitigated ACTs fall with the
mitigation threshold but stay ~1.8K+ even at threshold 1024.
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import figure23_series

THRESHOLDS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def test_fig23_blocking_tbit(benchmark):
    series = benchmark.pedantic(
        lambda: figure23_series(thresholds=THRESHOLDS, queue_sizes=(4, 8, 16, 32, 64)),
        rounds=1, iterations=1,
    )
    emit_series(
        "fig23",
        "Figure 23: max unmitigated ACTs with blocking-t-bit hardening",
        "threshold",
        {f"Q={q}": pts for q, pts in series.items()},
    )
    by_m = dict(series[4])
    assert by_m[1024] > 1_500  # paper: ~1800 minimum at M = 1024
    assert by_m[16] > 50_000
    values = [by_m[m] for m in THRESHOLDS]
    assert all(a > b for a, b in zip(values, values[1:]))
