"""Figure 11: maximum R1 with proactive mitigation vs without.

Paper: for N_BO >= 16 proactive mitigation shrinks the pool; at
N_BO in {128, 256} the Setup phase is fully drained — attack defeated.
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import figure11_series


def test_fig11_max_r1_with_proactive(benchmark):
    series = benchmark.pedantic(lambda: figure11_series(), rounds=1, iterations=1)
    flattened = {}
    for n_mit, pair in series.items():
        flattened[f"QPRAC-{n_mit}"] = pair["base"]
        flattened[f"QPRAC-{n_mit}+Pro"] = pair["proactive"]
    emit_series(
        "fig11",
        "Figure 11: max R1 with/without proactive mitigation",
        "N_BO",
        flattened,
    )
    for n_mit, pair in series.items():
        base = dict(pair["base"])
        pro = dict(pair["proactive"])
        # Attack defeated outright at high N_BO.
        assert pro[128] == 0 and pro[256] == 0
        # Substantial reduction at N_BO >= 32.
        assert pro[32] < 0.75 * base[32]
        assert pro[64] < 0.25 * base[64]
        # Negligible effect (can even help the attacker) at N_BO = 1.
        assert pro[1] >= 0.9 * base[1]
