"""Table II: system configuration."""

from __future__ import annotations

from conftest import emit_table

from repro.params import default_config


def test_table2_system_configuration(benchmark):
    def build():
        cfg = default_config()
        t, org, cpu = cfg.timing, cfg.org, cfg.cpu
        return [
            ["Out-Of-Order Cores",
             f"{cpu.cores} Core, {cpu.freq_ghz:.0f}GHz, {cpu.issue_width} wide, "
             f"{cpu.rob_entries} entry ROB"],
            ["Last Level Cache (Shared)",
             f"{cpu.llc_bytes // (1024 * 1024)}MB, {cpu.llc_ways}-Way, "
             f"{org.line_size_bytes}B lines"],
            ["Memory Size, Type",
             f"{org.capacity_bytes // 1024**3} GB, DDR5"],
            ["DRAM Organization",
             f"{org.banks_per_group} Bank x {org.bankgroups} Groups x "
             f"{org.ranks} Ranks x {org.channels} Channel"],
            ["tRCD, tCL, tRAS", f"{t.t_rcd:.0f}ns, {t.t_cl:.0f}ns, {t.t_ras:.0f}ns"],
            ["tRP, tRTP, tWR, tRC",
             f"{t.t_rp:.0f}ns, {t.t_rtp:.0f}ns, {t.t_wr:.0f}ns, {t.t_rc:.0f}ns"],
            ["tRFC, tREFI", f"{t.t_rfc:.0f} ns, {t.t_refi / 1000:.1f}us"],
            ["tABO_ACT, tRFMab", f"{t.t_abo_act:.0f}ns, {t.t_rfm:.0f}ns"],
            ["Rows Per Bank, Size",
             f"{org.rows_per_bank // 1024}K, {org.row_size_bytes // 1024}KB"],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_table("table2", "Table II: system configuration", ["Item", "Value"], rows)
    cfg = default_config()
    assert cfg.org.capacity_bytes == 64 * 1024**3
    assert cfg.timing.t_rp == 36.0  # PRAC-stretched precharge
    assert cfg.cpu.rob_entries == 352
