"""Figure 13: defended T_RH with proactive mitigation vs without.

Paper: with proactive mitigation the minimum T_RH at N_BO=1 drops to
40/27/20 (from 44/29/22), and at the default N_BO=32 to 66/55/50
(from 71/58/52).
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import figure13_series

PAPER_PRO = {1: {1: 40, 32: 66}, 2: {1: 27, 32: 55}, 4: {1: 20, 32: 50}}


def test_fig13_trh_with_proactive(benchmark):
    series = benchmark.pedantic(lambda: figure13_series(), rounds=1, iterations=1)
    flattened = {}
    for n_mit, pair in series.items():
        flattened[f"QPRAC-{n_mit}"] = pair["base"]
        flattened[f"QPRAC-{n_mit}+Pro"] = pair["proactive"]
    emit_series(
        "fig13",
        "Figure 13: secure T_RH with/without proactive (paper: 40/27/20 @1)",
        "N_BO",
        flattened,
    )
    for n_mit, points in PAPER_PRO.items():
        measured = dict(series[n_mit]["proactive"])
        for n_bo, expected in points.items():
            assert abs(measured[n_bo] - expected) <= 3, (n_mit, n_bo)
        base = dict(series[n_mit]["base"])
        for n_bo in (1, 32, 64):
            assert measured[n_bo] <= base[n_bo]
