"""Figure 17: sensitivity to the PSQ size (1..5 entries).

Paper: QPRAC stays under 1% slowdown at every queue size, slightly
better at larger sizes; the energy-aware proactive variants stay at ~0%
across proactive cadences (1 per 1/2/4 tREFI).
"""

from __future__ import annotations

from conftest import (
    bench_engine,
    bench_entries,
    bench_sweep,
    bench_workloads,
    emit_table,
)

from repro.exp import SweepSpec, mean_slowdown_by_override
from repro.params import MitigationVariant


def test_fig17_psq_size_sensitivity(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()
    sizes = (1, 2, 3, 4, 5)
    cadences = (1, 2, 4)
    # Two orchestrated grids sharing the fixture baselines (overrides only
    # alter the defense, so the insecure baseline is unaffected by them).
    size_spec = SweepSpec.build(
        names, (MitigationVariant.QPRAC,),
        overrides=tuple({"psq_size": s} for s in sizes),
        config=config, include_baseline=False, n_entries=entries,
        engine=bench_engine(),
    )
    cadence_spec = SweepSpec.build(
        names, (MitigationVariant.QPRAC_PROACTIVE_EA,),
        overrides=tuple({"proactive_every_n_refs": c} for c in cadences),
        config=config, include_baseline=False, n_entries=entries,
        engine=bench_engine(),
    )

    def build():
        rows = []
        size_means = mean_slowdown_by_override(
            bench_sweep(size_spec), MitigationVariant.QPRAC.value, baselines
        )
        qprac_by_size = {
            size: size_means[(("psq_size", size),)] for size in sizes
        }
        for size in sizes:
            rows.append([size, "qprac", round(qprac_by_size[size], 2)])
        cadence_means = mean_slowdown_by_override(
            bench_sweep(cadence_spec),
            MitigationVariant.QPRAC_PROACTIVE_EA.value, baselines,
        )
        for cadence in cadences:
            mean = cadence_means[(("proactive_every_n_refs", cadence),)]
            rows.append([5, f"ea 1-per-{cadence}-tREFI", round(mean, 2)])
        return rows, qprac_by_size

    rows, qprac_by_size = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_table(
        "fig17",
        "Figure 17: slowdown %% vs PSQ size (paper: <1%% everywhere)",
        ["PSQ size", "variant", "mean slowdown %"],
        rows,
    )
    # All sizes stay small; the 5-entry default is no worse than 1-entry.
    assert all(v < 2.5 for v in qprac_by_size.values())
    assert qprac_by_size[5] <= qprac_by_size[1] + 0.3
    ea_rows = [r for r in rows if str(r[1]).startswith("ea")]
    assert all(r[2] < 0.8 for r in ea_rows)
