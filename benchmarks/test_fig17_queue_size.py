"""Figure 17: sensitivity to the PSQ size (1..5 entries).

Paper: QPRAC stays under 1% slowdown at every queue size, slightly
better at larger sizes; the energy-aware proactive variants stay at ~0%
across proactive cadences (1 per 1/2/4 tREFI).
"""

from __future__ import annotations

from conftest import bench_entries, bench_workloads, emit_table

from repro.params import MitigationVariant
from repro.sim import simulate_workload


def test_fig17_psq_size_sensitivity(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()

    def build():
        rows = []
        qprac_by_size = {}
        for size in (1, 2, 3, 4, 5):
            cfg = config.with_prac(psq_size=size)
            slow = []
            for name in names:
                run = simulate_workload(
                    name, config=cfg,
                    variant=MitigationVariant.QPRAC, n_entries=entries,
                )
                slow.append(run.slowdown_pct_vs(baselines[name]))
            mean = sum(slow) / len(slow)
            qprac_by_size[size] = mean
            rows.append([size, "qprac", round(mean, 2)])
        for cadence in (1, 2, 4):
            cfg = config.with_prac(proactive_every_n_refs=cadence)
            slow = []
            for name in names:
                run = simulate_workload(
                    name, config=cfg,
                    variant=MitigationVariant.QPRAC_PROACTIVE_EA,
                    n_entries=entries,
                )
                slow.append(run.slowdown_pct_vs(baselines[name]))
            rows.append(
                [5, f"ea 1-per-{cadence}-tREFI",
                 round(sum(slow) / len(slow), 2)]
            )
        return rows, qprac_by_size

    rows, qprac_by_size = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_table(
        "fig17",
        "Figure 17: slowdown %% vs PSQ size (paper: <1%% everywhere)",
        ["PSQ size", "variant", "mean slowdown %"],
        rows,
    )
    # All sizes stay small; the 5-entry default is no worse than 1-entry.
    assert all(v < 2.5 for v in qprac_by_size.values())
    assert qprac_by_size[5] <= qprac_by_size[1] + 0.3
    ea_rows = [r for r in rows if str(r[1]).startswith("ea")]
    assert all(r[2] < 0.8 for r in ea_rows)
