"""Figure 8: T_RH values for which PRAC-N is secure, vs N_BO.

Paper: 44/29/22 at N_BO=1; 71/58/52 at the default N_BO=32;
289/279/274 at N_BO=256.
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import figure8_series

PAPER = {
    1: {1: 44, 32: 71, 256: 289},
    2: {1: 29, 32: 58, 256: 279},
    4: {1: 22, 32: 52, 256: 274},
}


def test_fig08_secure_trh(benchmark):
    series = benchmark.pedantic(lambda: figure8_series(), rounds=1, iterations=1)
    emit_series(
        "fig08",
        "Figure 8: secure T_RH vs N_BO (paper: 44/29/22 @1, 71/58/52 @32)",
        "N_BO",
        {f"PRAC-{n}": pts for n, pts in series.items()},
    )
    for n_mit, points in PAPER.items():
        measured = dict(series[n_mit])
        for n_bo, expected in points.items():
            assert abs(measured[n_bo] - expected) <= 4, (n_mit, n_bo)
        values = [v for _nbo, v in series[n_mit]]
        assert values == sorted(values)  # T_RH grows with N_BO
    # More RFMs per Alert -> lower defended threshold.
    assert dict(series[1])[1] > dict(series[2])[1] > dict(series[4])[1]
