"""Shared infrastructure for the benchmark harness.

Every file in benchmarks/ regenerates one of the paper's tables or
figures.  Results are printed (run with ``-s`` to see them live) and also
written to ``benchmarks/results/<name>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` leaves a reviewable record.

Environment knobs:

* ``REPRO_BENCH_WORKLOADS`` — comma-separated workload names, or ``all``
  for the full 57-workload sweep (slow).  Default: a 6-workload
  representative mix (the paper's call-outs plus a quiet workload).
* ``REPRO_BENCH_ENTRIES`` — trace length per core (default 6000).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.report import render_series, render_table
from repro.params import SystemConfig, default_config
from repro.sim import simulate_baseline
from repro.workloads.suites import ALL_WORKLOADS

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_WORKLOADS = (
    "429.mcf",
    "482.sphinx3",
    "510.parest",
    "471.omnetpp",
    "ycsb-a",
    "541.leela",
)


def bench_workloads() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "")
    if raw == "all":
        return tuple(w.name for w in ALL_WORKLOADS)
    if raw:
        return tuple(name.strip() for name in raw.split(",") if name.strip())
    return DEFAULT_WORKLOADS


def bench_entries() -> int:
    return int(os.environ.get("REPRO_BENCH_ENTRIES", "6000"))


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_table(name: str, title: str, headers, rows) -> None:
    emit(name, render_table(title, headers, rows))


def emit_series(name: str, title: str, x_label: str, series) -> None:
    emit(name, render_series(title, x_label, series))


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    return default_config()


@pytest.fixture(scope="session")
def baselines(config):
    """Insecure-baseline runs shared by all performance figures."""
    entries = bench_entries()
    return {
        name: simulate_baseline(name, config=config, n_entries=entries)
        for name in bench_workloads()
    }


@pytest.fixture(scope="session")
def variant_runs(config, baselines):
    """All five evaluated variants over the bench workloads
    (shared by Figures 14 and 15)."""
    from repro.sim import EVALUATED_VARIANTS, simulate_workload

    entries = bench_entries()
    runs = {}
    for variant in EVALUATED_VARIANTS:
        runs[variant] = {
            name: simulate_workload(
                name, config=config, variant=variant, n_entries=entries
            )
            for name in bench_workloads()
        }
    return runs
