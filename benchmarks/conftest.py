"""Shared infrastructure for the benchmark harness.

Every file in benchmarks/ regenerates one of the paper's tables or
figures.  Results are printed (run with ``-s`` to see them live) and also
written to ``benchmarks/results/<name>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` leaves a reviewable record.

Environment knobs:

* ``REPRO_BENCH_WORKLOADS`` — comma-separated workload names, or ``all``
  for the full 57-workload sweep (slow).  Default: a 6-workload
  representative mix (the paper's call-outs plus a quiet workload).
* ``REPRO_BENCH_ENTRIES`` — trace length per core (default 6000).
* ``REPRO_BENCH_JOBS`` — worker processes for the simulation sweeps
  (default 1; the sweeps are deterministic at any value).
* ``REPRO_BENCH_ENGINE`` — simulation engine for every sweep (default
  ``event``, the byte-identical reference; ``epoch`` runs the batched
  approximate engine, several times faster — see ``repro engines``).
  Cache rows are engine-keyed, so switching engines never mixes results.
* ``REPRO_BENCH_CACHE`` — directory for the orchestrator's result cache.
  Unset (the default) disables caching so every benchmark run simulates
  honestly; point it somewhere persistent to iterate on figure code
  without re-simulating.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.analysis.report import render_series, render_table
from repro.exp import ResultStore, SweepSpec, run_sweep
from repro.params import SystemConfig, default_config
from repro.workloads.suites import ALL_WORKLOADS

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_WORKLOADS = (
    "429.mcf",
    "482.sphinx3",
    "510.parest",
    "471.omnetpp",
    "ycsb-a",
    "541.leela",
)


def bench_workloads() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "")
    if raw == "all":
        return tuple(w.name for w in ALL_WORKLOADS)
    if raw:
        return tuple(name.strip() for name in raw.split(",") if name.strip())
    return DEFAULT_WORKLOADS


def bench_entries() -> int:
    return int(os.environ.get("REPRO_BENCH_ENTRIES", "6000"))


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_engine() -> str:
    """Simulation engine every figure sweep runs on (see module docs)."""
    return os.environ.get("REPRO_BENCH_ENGINE", "event")


@lru_cache(maxsize=1)
def bench_store() -> ResultStore | None:
    """Result cache for the simulation sweeps (None = disabled).

    Memoized: one JSONL load per session, shared by every sweep.
    """
    cache_dir = os.environ.get("REPRO_BENCH_CACHE", "")
    return ResultStore(cache_dir) if cache_dir else None


def bench_sweep(spec: SweepSpec):
    """Run a sweep with the harness-wide jobs/cache settings."""
    return run_sweep(spec, jobs=bench_jobs(), store=bench_store())


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_table(name: str, title: str, headers, rows) -> None:
    emit(name, render_table(title, headers, rows))


def emit_series(name: str, title: str, x_label: str, series) -> None:
    emit(name, render_series(title, x_label, series))


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    return default_config()


@pytest.fixture(scope="session")
def baselines(config):
    """Insecure-baseline runs shared by all performance figures.

    A baseline-only sweep, so sensitivity benchmarks that need nothing
    else never pay for the five-variant grid below.
    """
    from repro.exp import BASELINE

    spec = SweepSpec(
        workloads=bench_workloads(),
        defenses=(),
        config=config,
        include_baseline=True,
        n_entries=bench_entries(),
        engine=bench_engine(),
    )
    return bench_sweep(spec).results_by_variant()[BASELINE]


@pytest.fixture(scope="session")
def variant_runs(config):
    """All five evaluated variants over the bench workloads
    (shared by Figures 14 and 15)."""
    from repro.params import MitigationVariant
    from repro.sim import EVALUATED_VARIANTS

    spec = SweepSpec(
        workloads=bench_workloads(),
        defenses=EVALUATED_VARIANTS,
        config=config,
        include_baseline=False,
        n_entries=bench_entries(),
        engine=bench_engine(),
    )
    table = bench_sweep(spec).results_by_variant()
    return {MitigationVariant(name): runs for name, runs in table.items()}
