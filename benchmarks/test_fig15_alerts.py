"""Figure 15: Alert Back-Off occurrences per tREFI.

Paper: QPRAC-NoOp ~1.1 Alerts/tREFI on average (over 2 for the worst
workloads); QPRAC with opportunistic mitigation 0.07; the proactive
variants essentially zero.
"""

from __future__ import annotations

from conftest import bench_workloads, emit_table

from repro.params import MitigationVariant
from repro.sim import EVALUATED_VARIANTS


def test_fig15_alerts_per_trefi(benchmark, variant_runs):
    def build():
        headers = ["workload"] + [v.value for v in EVALUATED_VARIANTS]
        rows = []
        for name in bench_workloads():
            rows.append(
                [name]
                + [
                    round(variant_runs[v][name].alerts_per_trefi, 3)
                    for v in EVALUATED_VARIANTS
                ]
            )
        means = ["MEAN"]
        for variant in EVALUATED_VARIANTS:
            values = [
                variant_runs[variant][n].alerts_per_trefi
                for n in bench_workloads()
            ]
            means.append(round(sum(values) / len(values), 3))
        rows.append(means)
        return headers, rows

    headers, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_table(
        "fig15",
        "Figure 15: Alerts per tREFI (paper means: ~1.1 / 0.07 / 0 / 0 / 0)",
        headers,
        rows,
    )
    means = dict(zip(headers[1:], rows[-1][1:]))
    noop = means[MitigationVariant.QPRAC_NOOP.value]
    qprac = means[MitigationVariant.QPRAC.value]
    assert noop > 0.3
    assert qprac < noop / 4
    assert means[MitigationVariant.QPRAC_PROACTIVE.value] <= 0.02
    assert means[MitigationVariant.QPRAC_PROACTIVE_EA.value] <= 0.05
