"""Figure 12: N_online with proactive mitigation vs without.

Paper: proactive mitigation lowers N_online by up to ~5 / 2 / 1 for
QPRAC-1 / 2 / 4.
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import figure12_series

R1_VALUES = [4, 20_000, 60_000, 100_000, 128 * 1024]
PAPER_DROP_MAX = {1: 5, 2: 2, 4: 1}


def test_fig12_nonline_with_proactive(benchmark):
    series = benchmark.pedantic(
        lambda: figure12_series(r1_values=R1_VALUES), rounds=1, iterations=1
    )
    flattened = {}
    for n_mit, pair in series.items():
        flattened[f"QPRAC-{n_mit}"] = pair["base"]
        flattened[f"QPRAC-{n_mit}+Pro"] = pair["proactive"]
    emit_series(
        "fig12",
        "Figure 12: N_online with/without proactive mitigation",
        "R1",
        flattened,
    )
    for n_mit, pair in series.items():
        base = dict(pair["base"])
        pro = dict(pair["proactive"])
        drops = [base[r1] - pro[r1] for r1 in R1_VALUES]
        assert all(d >= 0 for d in drops)  # proactive never hurts
        assert max(drops) <= PAPER_DROP_MAX[n_mit] + 2
        assert max(drops) >= 1 or n_mit == 4  # visible effect
