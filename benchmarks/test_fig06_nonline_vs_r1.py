"""Figure 6: online-phase activations (N_online) vs starting pool R1.

Paper: N_online reaches 46 / 30 / 23 for PRAC-1 / 2 / 4 at R1 = 128K.
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import figure6_series

R1_VALUES = [4, 20_000, 40_000, 60_000, 80_000, 100_000, 120_000, 128 * 1024]
PAPER_MAX = {1: 46, 2: 30, 4: 23}


def test_fig06_nonline_vs_r1(benchmark):
    series = benchmark.pedantic(
        lambda: figure6_series(r1_values=R1_VALUES), rounds=1, iterations=1
    )
    emit_series(
        "fig06",
        "Figure 6: N_online vs R1 (paper max: 46/30/23)",
        "R1",
        {f"PRAC-{n}": pts for n, pts in series.items()},
    )
    for n_mit, expected in PAPER_MAX.items():
        at_max = dict(series[n_mit])[128 * 1024]
        assert abs(at_max - expected) <= 2
        values = [v for _r1, v in series[n_mit]]
        assert values == sorted(values)  # monotone in R1
