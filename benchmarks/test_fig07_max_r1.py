"""Figure 7: maximum starting row pool R1 vs Back-Off threshold.

Paper: 50K-62K at N_BO = 1 (PRAC-1..4), dropping to ~2K at N_BO = 256.
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import NBO_SWEEP, figure7_series


def test_fig07_max_r1(benchmark):
    series = benchmark.pedantic(lambda: figure7_series(), rounds=1, iterations=1)
    emit_series(
        "fig07",
        "Figure 7: max R1 vs N_BO (paper: 50K-62K @1, ~2K @256)",
        "N_BO",
        {f"PRAC-{n}": pts for n, pts in series.items()},
    )
    at1 = {n: dict(series[n])[1] for n in (1, 2, 4)}
    assert 45_000 <= at1[1] <= 57_000
    assert 58_000 <= at1[4] <= 70_000
    assert at1[1] < at1[2] < at1[4]
    for n in (1, 2, 4):
        at256 = dict(series[n])[256]
        assert 1_800 <= at256 <= 2_400
        values = [v for _nbo, v in series[n]]
        assert all(a >= b for a, b in zip(values, values[1:]))
    assert list(dict(series[1])) == list(NBO_SWEEP)
