"""Table IV: per-bank SRAM overhead of in-DRAM trackers.

Paper: Misra-Gries 42.5 KB -> 1700 KB, TWiCe 300 KB -> 12 MB, CAT
196 KB -> 7.84 MB as T_RH drops from 4K to 100; QPRAC stays at
15 bytes regardless.
"""

from __future__ import annotations

import pytest
from conftest import emit_table

from repro.energy import qprac_bytes, table4
from repro.mitigations import MITHRIL_ENTRIES_PER_BANK


def test_table4_tracker_storage(benchmark):
    rows_data = benchmark.pedantic(lambda: table4((4096, 100)), rounds=1, iterations=1)
    rows = [[r.tracker, r.t_rh, r.human] for r in rows_data]
    rows.append(
        ["Mithril CAM (paper quote)", "sub-100",
         f"{MITHRIL_ENTRIES_PER_BANK} entries"]
    )
    emit_table(
        "table4",
        "Table IV: per-bank SRAM (paper: QPRAC 15 bytes at every T_RH)",
        ["Tracker", "T_RH", "Per-bank SRAM"],
        rows,
    )
    by_key = {(r.tracker, r.t_rh): r.bytes_per_bank for r in rows_data}
    assert by_key[("QPRAC", 4096)] == 15.0
    assert by_key[("QPRAC", 100)] == 15.0
    assert by_key[("Misra-Gries", 4096)] == pytest.approx(42.5 * 1024)
    assert by_key[("TWiCe", 100)] == pytest.approx(12 * 1024**2, rel=0.05)
    assert by_key[("CAT", 100)] == pytest.approx(7.84 * 1024**2, rel=0.05)
    # QPRAC is at least three orders of magnitude smaller at T_RH = 100.
    assert by_key[("Misra-Gries", 100)] / qprac_bytes() > 1000
