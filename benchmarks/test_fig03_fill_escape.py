"""Figure 3: Fill+Escape on full-counter-comparison Panopticon.

Paper shape: U-shaped curve over the mitigation threshold with its
minimum (~1.3K unmitigated ACTs; ours ~1.15K) near threshold 512 —
insecure below T_RH ~1280 regardless of queue size.
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import figure3_series

THRESHOLDS = (64, 128, 256, 512, 1024, 2048, 4096)


def test_fig03_fill_escape(benchmark):
    series = benchmark.pedantic(
        lambda: figure3_series(thresholds=THRESHOLDS, queue_sizes=(4, 8, 16, 32, 64)),
        rounds=1, iterations=1,
    )
    emit_series(
        "fig03",
        "Figure 3: max unmitigated ACTs under Fill+Escape",
        "threshold",
        {f"Q={q}": pts for q, pts in series.items()},
    )
    by_m = dict(series[4])
    minimum = min(by_m.values())
    best_m = min(by_m, key=by_m.get)
    assert best_m in (256, 512, 1024)
    assert minimum > 1_000  # insecure at sub-1280 T_RH
    # U-shape: both ends exceed the middle.
    assert by_m[64] > by_m[512]
    assert by_m[4096] > by_m[512]
    # Queue size is secondary (curves nearly overlap).
    assert abs(dict(series[64])[512] - by_m[512]) < 0.2 * by_m[512]
