"""Figure 22: QPRAC vs MOAT mitigation-energy overhead as N_BO varies.

Paper: both under ~2% at N_BO >= 32 (MOAT via its dual threshold, QPRAC
via energy-aware proactive mitigation); rising at N_BO = 16 (MOAT 5.7%,
QPRAC 4.1% in the paper's traces) with QPRAC at or below MOAT.
"""

from __future__ import annotations

from conftest import bench_entries, bench_workloads, emit_table

from repro.energy import mitigation_energy_pct
from repro.params import MitigationVariant
from repro.sim import moat_factory, qprac_factory, simulate_workload


def test_fig22_moat_vs_qprac_energy(benchmark, config):
    names = list(bench_workloads())[:2]
    entries = bench_entries()

    def mean_energy(cfg, factory):
        values = []
        for name in names:
            run = simulate_workload(
                name, config=cfg, defense_factory=factory, n_entries=entries
            )
            values.append(mitigation_energy_pct(run, cfg))
        return sum(values) / len(values)

    def build():
        table = {}
        for n_bo in (16, 32, 64):
            cfg = config.with_prac(n_bo=n_bo)
            table[("MOAT", n_bo)] = mean_energy(cfg, moat_factory())
            table[("MOAT+Pro", n_bo)] = mean_energy(
                cfg, moat_factory(proactive_every_n_refs=1)
            )
            table[("QPRAC", n_bo)] = mean_energy(
                cfg, qprac_factory(MitigationVariant.QPRAC)
            )
            table[("QPRAC+Pro-EA", n_bo)] = mean_energy(
                cfg, qprac_factory(MitigationVariant.QPRAC_PROACTIVE_EA)
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    labels = ("MOAT", "MOAT+Pro", "QPRAC", "QPRAC+Pro-EA")
    rows = [
        [n_bo] + [round(table[(label, n_bo)], 2) for label in labels]
        for n_bo in (16, 32, 64)
    ]
    emit_table(
        "fig22",
        "Figure 22: mitigation energy overhead %% vs N_BO "
        "(paper: <2%% @32+, rising @16)",
        ["N_BO"] + list(labels),
        rows,
    )
    for n_bo in (32, 64):
        assert table[("QPRAC", n_bo)] < 2.5
        assert table[("MOAT", n_bo)] < 2.5
    # Energy grows (or at worst stays flat) as N_BO shrinks.
    assert table[("QPRAC", 16)] >= table[("QPRAC", 64)] - 0.1
    # The EA design spends more than plain QPRAC but far less than
    # mitigate-on-every-REF behaviour.
    assert table[("QPRAC+Pro-EA", 32)] < 6.0
