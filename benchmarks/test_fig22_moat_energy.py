"""Figure 22: QPRAC vs MOAT mitigation-energy overhead as N_BO varies.

Paper: both under ~2% at N_BO >= 32 (MOAT via its dual threshold, QPRAC
via energy-aware proactive mitigation); rising at N_BO = 16 (MOAT 5.7%,
QPRAC 4.1% in the paper's traces) with QPRAC at or below MOAT.

Routed through the :mod:`repro.exp` orchestrator: one DefenseSpec-keyed
sweep (MOAT selected by registry name, with its proactive cadence as a
spec parameter) over N_BO override sets, parallel with
``REPRO_BENCH_JOBS`` and fully cached under ``REPRO_BENCH_CACHE``.
"""

from __future__ import annotations

from conftest import bench_engine, bench_entries, bench_sweep, bench_workloads, emit_table

from repro.energy import mitigation_energy_pct
from repro.exp import SweepSpec
from repro.params import MitigationVariant

DEFENSES = (
    "moat",
    "moat:proactive_every_n_refs=1",
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE_EA,
)

LABELS = ("MOAT", "MOAT+Pro", "QPRAC", "QPRAC+Pro-EA")

NBO_VALUES = (16, 32, 64)


def test_fig22_moat_vs_qprac_energy(benchmark, config):
    names = list(bench_workloads())[:2]
    entries = bench_entries()

    def build():
        spec = SweepSpec(
            workloads=tuple(names),
            defenses=DEFENSES,
            overrides=tuple({"n_bo": n_bo} for n_bo in NBO_VALUES),
            config=config,
            include_baseline=False,
            n_entries=entries,
            engine=bench_engine(),
        )
        sweep = bench_sweep(spec)
        table = {}
        for overrides in sweep.spec.overrides:
            n_bo = dict(overrides)["n_bo"]
            cfg = config.with_prac(n_bo=n_bo)
            results = sweep.results_by_variant(overrides=overrides)
            for label, defense in zip(LABELS, sweep.spec.defenses):
                runs = results[defense.label]
                values = [
                    mitigation_energy_pct(runs[name], cfg) for name in names
                ]
                table[(label, n_bo)] = sum(values) / len(values)
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [n_bo] + [round(table[(label, n_bo)], 2) for label in LABELS]
        for n_bo in NBO_VALUES
    ]
    emit_table(
        "fig22",
        "Figure 22: mitigation energy overhead %% vs N_BO "
        "(paper: <2%% @32+, rising @16)",
        ["N_BO"] + list(LABELS),
        rows,
    )
    for n_bo in (32, 64):
        assert table[("QPRAC", n_bo)] < 2.5
        assert table[("MOAT", n_bo)] < 2.5
    # Energy grows (or at worst stays flat) as N_BO shrinks.
    assert table[("QPRAC", 16)] >= table[("QPRAC", 64)] - 0.1
    # The EA design spends more than plain QPRAC but far less than
    # mitigate-on-every-REF behaviour.
    assert table[("QPRAC+Pro-EA", 32)] < 6.0
