"""Figure 2: Panopticon's Toggle+Forget vulnerability.

Paper shape: >100K unmitigated activations at queue size 4, ~25-35K at
queue size 16, independent of the t-bit / mitigation threshold.
"""

from __future__ import annotations

from conftest import emit_series

from repro.security import figure2_series


def test_fig02_toggle_forget(benchmark):
    series = benchmark.pedantic(
        lambda: figure2_series(queue_sizes=tuple(range(4, 17)), t_bits=(6, 8, 10)),
        rounds=1, iterations=1,
    )
    emit_series(
        "fig02",
        "Figure 2: max unmitigated ACTs under Toggle+Forget",
        "queue_size",
        {f"t_bit={t}": pts for t, pts in series.items()},
    )
    by_q = {q: v for q, v in series[6]}
    assert by_q[4] > 100_000
    assert 20_000 < by_q[16] < 40_000
    # Independent of the threshold (the paper's key observation).
    for q in (4, 10, 16):
        values = [dict(series[t])[q] for t in (6, 8, 10)]
        assert max(values) - min(values) < 0.1 * max(values)
    # Monotonically decreasing in queue size.
    values = [by_q[q] for q in range(4, 17)]
    assert all(a > b for a, b in zip(values, values[1:]))
