"""Figure 14: normalized performance of the QPRAC variants.

Paper (57 workloads, N_BO=32, PRAC-1): QPRAC-NoOp 12.4% average
slowdown; QPRAC 0.8%; QPRAC+Proactive / +Proactive-EA / Ideal ~0%.
Our synthetic-workload averages differ in magnitude but must keep the
ordering and the near-zero proactive results.
"""

from __future__ import annotations

from conftest import bench_workloads, emit_table

from repro.params import MitigationVariant
from repro.sim import EVALUATED_VARIANTS


def test_fig14_variant_slowdowns(benchmark, baselines, variant_runs):
    def build():
        headers = ["workload"] + [v.value for v in EVALUATED_VARIANTS]
        rows = []
        for name in bench_workloads():
            row = [name]
            for variant in EVALUATED_VARIANTS:
                slowdown = variant_runs[variant][name].slowdown_pct_vs(
                    baselines[name]
                )
                row.append(round(slowdown, 2))
            rows.append(row)
        means = ["MEAN"]
        for variant in EVALUATED_VARIANTS:
            values = [
                variant_runs[variant][n].slowdown_pct_vs(baselines[n])
                for n in bench_workloads()
            ]
            means.append(round(sum(values) / len(values), 2))
        rows.append(means)
        return headers, rows

    headers, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_table(
        "fig14",
        "Figure 14: slowdown %% vs insecure baseline "
        "(paper means: 12.4 / 0.8 / 0 / 0 / 0)",
        headers,
        rows,
    )
    means = dict(zip(headers[1:], rows[-1][1:]))
    noop = means[MitigationVariant.QPRAC_NOOP.value]
    qprac = means[MitigationVariant.QPRAC.value]
    # Short traces dilute the paper's 12.4% NoOp mean (counters accrue
    # over far fewer tREFI); the ordering is what must hold — under
    # both simulation engines.
    assert noop > 2.0, "NoOp must show a substantial slowdown"
    assert qprac < 1.0, "opportunistic QPRAC must be ~1% or below"
    assert noop > 4 * max(qprac, 0.3)
    for variant in (
        MitigationVariant.QPRAC_PROACTIVE,
        MitigationVariant.QPRAC_PROACTIVE_EA,
        MitigationVariant.QPRAC_IDEAL,
    ):
        assert means[variant.value] < 0.8, variant
