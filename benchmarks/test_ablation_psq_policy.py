"""Ablation: PSQ insertion policy (strict > vs >= the queue minimum).

DESIGN.md calls this out: the paper specifies *strictly greater*
insertion.  The ablation shows the choice is security-neutral under the
wave attack (both policies keep the global top-N) while the non-strict
policy churns the CAM more (every tied activation evicts an entry) —
i.e. the paper's choice is the cheaper of two equally-secure designs.
"""

from __future__ import annotations

from conftest import emit_table

from repro.core.prac_counters import PRACCounterBank
from repro.core.psq import PriorityServiceQueue
from repro.params import PRACParams
from repro.security.wave_sim import run_wave_attack


def _churn_under_uniform_stream(strict: bool, rows: int = 64, acts: int = 4000) -> tuple[int, int]:
    """Replay a uniform (worst-case tie-heavy) stream; return
    (evictions, rejected)."""
    counters = PRACCounterBank(rows)
    psq = PriorityServiceQueue(5, strict_insertion=strict)
    for i in range(acts):
        row = i % rows
        psq.observe(row, counters.activate(row))
    return psq.evictions, psq.rejected


def test_ablation_psq_insertion_policy(benchmark):
    def build():
        strict_attack = run_wave_attack(
            200, PRACParams(n_bo=4, strict_psq_insertion=True)
        )
        loose_attack = run_wave_attack(
            200, PRACParams(n_bo=4, strict_psq_insertion=False)
        )
        strict_churn = _churn_under_uniform_stream(True)
        loose_churn = _churn_under_uniform_stream(False)
        return strict_attack, loose_attack, strict_churn, loose_churn

    strict_attack, loose_attack, strict_churn, loose_churn = (
        benchmark.pedantic(build, rounds=1, iterations=1)
    )
    emit_table(
        "ablation_psq_policy",
        "Ablation: PSQ insertion policy (strict '>' vs non-strict '>=')",
        ["metric", "strict (paper)", "non-strict"],
        [
            ["wave-attack max unmitigated ACTs",
             strict_attack.max_unmitigated_acts,
             loose_attack.max_unmitigated_acts],
            ["wave-attack alerts", strict_attack.alerts, loose_attack.alerts],
            ["CAM evictions (uniform stream)",
             strict_churn[0], loose_churn[0]],
            ["rejected insertions (uniform stream)",
             strict_churn[1], loose_churn[1]],
        ],
    )
    # Security-equivalent under the wave attack...
    assert (
        strict_attack.max_unmitigated_acts
        == loose_attack.max_unmitigated_acts
    )
    # ...but the non-strict policy churns the CAM far more on ties.
    assert loose_churn[0] > 2 * strict_churn[0]
