"""Figure 19: DRAM activation-bandwidth loss under performance attacks.

Two complementary reproductions:

* the paper's worst-case **analytical** attacker
  (:func:`repro.sim.analytical_bandwidth_reduction`), which reproduces
  the reported RFMab points (93%/62% plain at N_BO 16/128; 91%/77%/~10%/0%
  with proactive mitigation at 16/32/64/128);
* the **event-driven simulation** of a pool attacker against the real
  QPRAC state machines, which is more favourable to QPRAC because the
  attacker honestly pays for opportunistically-mitigated pool rows.

The simulated attacks are routed through :mod:`repro.exp`'s
content-addressed :class:`~repro.exp.AttackJob` layer, so they replay
from the same cache (``REPRO_BENCH_CACHE``) as the workload sweeps.
"""

from __future__ import annotations

from conftest import bench_store, emit, emit_series

from repro.analysis.report import render_series
from repro.exp import attack_job, run_attack_jobs
from repro.params import MitigationVariant, RfmScope
from repro.sim import analytical_bandwidth_reduction

NBO_VALUES = (16, 32, 64, 128)


def test_fig19_analytical_model(benchmark):
    def build():
        return {
            "RFMab": [
                (n, round(analytical_bandwidth_reduction(n) * 100))
                for n in NBO_VALUES
            ],
            "RFMab+Pro": [
                (n, round(analytical_bandwidth_reduction(n, proactive=True) * 100))
                for n in NBO_VALUES
            ],
            "RFMsb+Pro": [
                (n, round(analytical_bandwidth_reduction(
                    n, RfmScope.SAME_BANK, True) * 100))
                for n in NBO_VALUES
            ],
            "RFMpb+Pro": [
                (n, round(analytical_bandwidth_reduction(
                    n, RfmScope.PER_BANK, True) * 100))
                for n in NBO_VALUES
            ],
        }

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_series(
        "fig19_analytical",
        "Figure 19 (analytical): bandwidth reduction %% "
        "(paper ab: 93..62 plain; 91/77/10/0 +Pro)",
        "N_BO",
        series,
    )
    ab = dict(series["RFMab"])
    ab_pro = dict(series["RFMab+Pro"])
    assert ab[16] == 93 and ab[128] == 62
    assert ab_pro[16] == 91
    assert abs(ab_pro[32] - 77) <= 3
    assert ab_pro[64] <= 15
    assert ab_pro[128] == 0
    for n in NBO_VALUES:  # scope ordering: ab >= sb >= pb
        assert ab_pro[n] >= dict(series["RFMsb+Pro"])[n] >= dict(series["RFMpb+Pro"])[n]


def test_fig19_simulated_attack(benchmark, config):
    params = dict(measure_ns=120_000, warmup_ns=40_000, pool_rows_per_bank=8)
    grid = [
        (label, n_bo, variant)
        for n_bo in (16, 64)
        for variant, label in (
            (MitigationVariant.QPRAC, "QPRAC"),
            (MitigationVariant.QPRAC_PROACTIVE, "QPRAC+Pro"),
        )
    ]

    def build():
        jobs = [attack_job("baseline", config, **params)] + [
            attack_job(variant, config.with_prac(n_bo=n_bo), **params)
            for _label, n_bo, variant in grid
        ]
        results = run_attack_jobs(jobs, store=bench_store())
        base = results[0]
        return {
            (label, n_bo): (
                round(run.reduction_vs(base) * 100, 1), run.alerts
            )
            for (label, n_bo, _variant), run in zip(grid, results[1:])
        }

    points = benchmark.pedantic(build, rounds=1, iterations=1)
    series = {
        label: [(n_bo, points[(label, n_bo)][0]) for n_bo in (16, 64)]
        for label in ("QPRAC", "QPRAC+Pro")
    }
    emit(
        "fig19_simulated",
        render_series(
            "Figure 19 (simulated pool attacker): bandwidth reduction %",
            "N_BO",
            series,
        ),
    )
    plain = dict(series["QPRAC"])
    pro = dict(series["QPRAC+Pro"])
    assert plain[16] > plain[64] - 0.5  # loss grows as N_BO falls
    assert plain[16] > 2.0  # the attack visibly hurts at N_BO = 16
    assert pro[64] <= plain[16]  # proactive + high N_BO is the safe corner
