"""Figure 16: sensitivity to the number of RFMs per Alert (PRAC level).

Paper: QPRAC stays at 0.8-0.9% slowdown across PRAC-1/2/4 (more RFMs per
Alert cost more per Alert but proportionally reduce Alert count); the
proactive variants stay at 0%.  PRAC-2/PRAC-4 cut Alert counts by
~1.9x / ~3.3x vs PRAC-1.

Routed through the :mod:`repro.exp` orchestrator: one DefenseSpec-keyed
sweep over variants x PRAC-level override sets, parallel with
``REPRO_BENCH_JOBS`` and fully cached under ``REPRO_BENCH_CACHE``.
"""

from __future__ import annotations

from conftest import bench_engine, bench_entries, bench_sweep, bench_workloads, emit_table

from repro.exp import SweepSpec
from repro.params import MitigationVariant

VARIANTS = (
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE_EA,
)

PRAC_LEVELS = (1, 2, 4)


def test_fig16_prac_level_sensitivity(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()

    def build():
        spec = SweepSpec(
            workloads=tuple(names),
            defenses=VARIANTS,
            overrides=tuple(
                {"n_mit": n_mit, "abo_delay": None} for n_mit in PRAC_LEVELS
            ),
            config=config,
            include_baseline=False,
            n_entries=entries,
            engine=bench_engine(),
        )
        sweep = bench_sweep(spec)
        rows = []
        alerts_by_level = {}
        for overrides in sweep.spec.overrides:
            n_mit = dict(overrides)["n_mit"]
            table = sweep.results_by_variant(overrides=overrides)
            for variant in VARIANTS:
                runs = table[variant.value]
                slow = [
                    runs[name].slowdown_pct_vs(baselines[name])
                    for name in names
                ]
                alerts = sum(runs[name].alerts for name in names)
                rows.append(
                    [f"PRAC-{n_mit}", variant.value,
                     round(sum(slow) / len(slow), 2), alerts]
                )
                if variant is MitigationVariant.QPRAC:
                    alerts_by_level[n_mit] = alerts
        return rows, alerts_by_level

    rows, alerts_by_level = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_table(
        "fig16",
        "Figure 16: slowdown %% by RFMs/Alert (paper: QPRAC 0.8-0.9%%, "
        "proactive 0%%)",
        ["PRAC level", "variant", "mean slowdown %", "alerts"],
        rows,
    )
    qprac_rows = [r for r in rows if r[1] == MitigationVariant.QPRAC.value]
    slowdowns = [r[2] for r in qprac_rows]
    # Roughly flat across PRAC levels (the paper sees 0.8-0.9%; at our
    # scale each Alert is rarer but costs more RFM time -> small spread).
    assert max(slowdowns) - min(slowdowns) < 2.5
    assert all(s < 3.0 for s in slowdowns)
    ea_rows = [
        r for r in rows if r[1] == MitigationVariant.QPRAC_PROACTIVE_EA.value
    ]
    assert all(r[2] < 0.8 for r in ea_rows)
    # More RFMs per Alert never increases the Alert count.
    assert alerts_by_level[1] >= alerts_by_level[2] >= alerts_by_level[4]
