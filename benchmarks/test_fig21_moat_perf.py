"""Figure 21: QPRAC vs MOAT performance as N_BO varies.

Paper: both are <1% at N_BO >= 32; at N_BO = 16 MOAT incurs 3.6% vs
QPRAC's 2.3%, and proactive cadences shrink both (MOAT+Pro-per-tREFI
0.7% vs QPRAC's 0.1%) — QPRAC's multi-entry PSQ scales better.

One :mod:`repro.exp` sweep: the mixed MOAT/QPRAC defense grid crossed
with N_BO override sets, cached per DefenseSpec-keyed job.
"""

from __future__ import annotations

from conftest import bench_engine, bench_entries, bench_workloads, bench_sweep, emit_table

from repro.defenses import DefenseSpec, resolve_defense
from repro.exp import SweepSpec, mean_slowdown_by_override

NBO_VALUES = (16, 32, 64)

#: Display label -> defense designator.
DEFENSES = {
    "MOAT": DefenseSpec("moat"),
    "MOAT+Pro": DefenseSpec.of("moat", proactive_every_n_refs=1),
    "QPRAC": "qprac",
    "QPRAC+Pro-EA": "qprac+proactive-ea",
}


def test_fig21_moat_vs_qprac(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()

    def build():
        spec = SweepSpec(
            workloads=tuple(names),
            defenses=tuple(DEFENSES.values()),
            overrides=tuple({"n_bo": n_bo} for n_bo in NBO_VALUES),
            config=config,
            include_baseline=False,
            n_entries=entries,
            engine=bench_engine(),
        )
        sweep = bench_sweep(spec)
        table = {}
        for label, defense in DEFENSES.items():
            spec_label = resolve_defense(defense).label
            means = mean_slowdown_by_override(sweep, spec_label, baselines)
            for overrides, mean in means.items():
                table[(label, dict(overrides)["n_bo"])] = mean
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    labels = tuple(DEFENSES)
    rows = [
        [n_bo] + [round(table[(label, n_bo)], 2) for label in labels]
        for n_bo in NBO_VALUES
    ]
    emit_table(
        "fig21",
        "Figure 21: slowdown %% vs N_BO "
        "(paper @16: MOAT 3.6 / QPRAC 2.3; ~0 @32+)",
        ["N_BO"] + list(labels),
        rows,
    )
    # Both negligible at N_BO >= 32.
    for n_bo in (32, 64):
        assert table[("MOAT", n_bo)] < 1.5
        assert table[("QPRAC", n_bo)] < 1.5
    # The N_BO=16 comparisons split sub-percentage-point differences —
    # below the epoch engine's documented tolerance (its approximate
    # clock can flip orderings that close; see the README fidelity
    # contract) — so they are asserted under the event reference only.
    if bench_engine() == "event":
        # At N_BO = 16 QPRAC is no worse than MOAT.
        assert table[("QPRAC", 16)] <= table[("MOAT", 16)] + 0.3
        # Proactive cadence helps both designs.
        assert table[("MOAT+Pro", 16)] <= table[("MOAT", 16)] + 0.1
        assert table[("QPRAC+Pro-EA", 16)] <= table[("QPRAC", 16)] + 0.1
