"""Figure 21: QPRAC vs MOAT performance as N_BO varies.

Paper: both are <1% at N_BO >= 32; at N_BO = 16 MOAT incurs 3.6% vs
QPRAC's 2.3%, and proactive cadences shrink both (MOAT+Pro-per-tREFI
0.7% vs QPRAC's 0.1%) — QPRAC's multi-entry PSQ scales better.
"""

from __future__ import annotations

from conftest import bench_entries, bench_workloads, emit_table

from repro.params import MitigationVariant
from repro.sim import moat_factory, qprac_factory, simulate_workload


def test_fig21_moat_vs_qprac(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()

    def mean_slowdown(cfg, factory):
        values = []
        for name in names:
            run = simulate_workload(
                name, config=cfg, defense_factory=factory, n_entries=entries
            )
            values.append(run.slowdown_pct_vs(baselines[name]))
        return sum(values) / len(values)

    def build():
        table = {}
        for n_bo in (16, 32, 64):
            cfg = config.with_prac(n_bo=n_bo)
            table[("MOAT", n_bo)] = mean_slowdown(cfg, moat_factory())
            table[("MOAT+Pro", n_bo)] = mean_slowdown(
                cfg, moat_factory(proactive_every_n_refs=1)
            )
            table[("QPRAC", n_bo)] = mean_slowdown(
                cfg, qprac_factory(MitigationVariant.QPRAC)
            )
            table[("QPRAC+Pro-EA", n_bo)] = mean_slowdown(
                cfg, qprac_factory(MitigationVariant.QPRAC_PROACTIVE_EA)
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    labels = ("MOAT", "MOAT+Pro", "QPRAC", "QPRAC+Pro-EA")
    rows = [
        [n_bo] + [round(table[(label, n_bo)], 2) for label in labels]
        for n_bo in (16, 32, 64)
    ]
    emit_table(
        "fig21",
        "Figure 21: slowdown %% vs N_BO "
        "(paper @16: MOAT 3.6 / QPRAC 2.3; ~0 @32+)",
        ["N_BO"] + list(labels),
        rows,
    )
    # Both negligible at N_BO >= 32.
    for n_bo in (32, 64):
        assert table[("MOAT", n_bo)] < 1.5
        assert table[("QPRAC", n_bo)] < 1.5
    # At N_BO = 16 QPRAC is no worse than MOAT.
    assert table[("QPRAC", 16)] <= table[("MOAT", 16)] + 0.3
    # Proactive cadence helps both designs.
    assert table[("MOAT+Pro", 16)] <= table[("MOAT", 16)] + 0.1
    assert table[("QPRAC+Pro-EA", 16)] <= table[("QPRAC", 16)] + 0.1
