"""Figure 20: QPRAC vs Mithril vs PrIDE across Rowhammer thresholds.

Paper: at T_RH <= 512 both baselines degrade badly (Mithril 69%..10%,
PrIDE 54%..7% slowdown from T_RH 64..512) while QPRAC+Proactive-EA stays
at ~0% everywhere; all schemes converge near zero at T_RH = 1024.
Mithril additionally needs a ~5300-entry CAM per bank vs QPRAC's 5.

One :mod:`repro.exp` sweep over a mixed defense grid: every
``mithril:t_rh=N`` / ``pride:t_rh=N`` point and the QPRAC reference are
DefenseSpec-labeled jobs in the same cached, parallel run.
"""

from __future__ import annotations

from conftest import (
    bench_engine,
    bench_entries,
    bench_sweep,
    bench_workloads,
    emit_series,
)

from repro.defenses import DefenseSpec
from repro.exp import SweepSpec, mean_slowdown_by_override
from repro.params import MitigationVariant

TRH_VALUES = (64, 256, 1024)

QPRAC_EA = MitigationVariant.QPRAC_PROACTIVE_EA.value


def test_fig20_vs_mithril_and_pride(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()
    defenses = tuple(
        DefenseSpec.of(kind, t_rh=t_rh)
        for t_rh in TRH_VALUES
        for kind in ("mithril", "pride")
    ) + (QPRAC_EA,)

    def build():
        spec = SweepSpec(
            workloads=tuple(names),
            defenses=defenses,
            config=config,
            include_baseline=False,
            n_entries=entries,
            engine=bench_engine(),
        )
        sweep = bench_sweep(spec)

        def mean_slowdown(label: str) -> float:
            return mean_slowdown_by_override(sweep, label, baselines)[()]

        # QPRAC's N_BO=32 config defends T_RH 66+ regardless of the sweep
        # value; its cost is flat across the T_RH axis.
        ea_mean = mean_slowdown(QPRAC_EA)
        series = {"Mithril": [], "PrIDE": [], "QPRAC+Pro-EA": []}
        for t_rh in TRH_VALUES:
            series["Mithril"].append(
                (t_rh, round(mean_slowdown(f"mithril:t_rh={t_rh}"), 1))
            )
            series["PrIDE"].append(
                (t_rh, round(mean_slowdown(f"pride:t_rh={t_rh}"), 1))
            )
            series["QPRAC+Pro-EA"].append((t_rh, round(ea_mean, 1)))
        return series

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_series(
        "fig20",
        "Figure 20: slowdown %% vs T_RH "
        "(paper @64: Mithril 69, PrIDE 54, QPRAC 0)",
        "T_RH",
        series,
    )
    mithril = dict(series["Mithril"])
    pride = dict(series["PrIDE"])
    qprac = dict(series["QPRAC+Pro-EA"])
    for t_rh in TRH_VALUES:
        assert mithril[t_rh] >= pride[t_rh] - 1.0, t_rh
        assert qprac[t_rh] < 1.0, t_rh
    assert mithril[64] > 25.0
    assert pride[64] > 15.0
    assert mithril[64] > mithril[1024]
    assert pride[64] > pride[1024]
