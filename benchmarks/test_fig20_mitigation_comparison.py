"""Figure 20: QPRAC vs Mithril vs PrIDE across Rowhammer thresholds.

Paper: at T_RH <= 512 both baselines degrade badly (Mithril 69%..10%,
PrIDE 54%..7% slowdown from T_RH 64..512) while QPRAC+Proactive-EA stays
at ~0% everywhere; all schemes converge near zero at T_RH = 1024.
Mithril additionally needs a ~5300-entry CAM per bank vs QPRAC's 5.
"""

from __future__ import annotations

from conftest import bench_entries, bench_workloads, emit_series

from repro.mitigations import mithril_factory, pride_factory
from repro.params import MitigationVariant
from repro.sim import simulate_workload

TRH_VALUES = (64, 256, 1024)


def test_fig20_vs_mithril_and_pride(benchmark, config, baselines):
    names = list(bench_workloads())[:3]
    entries = bench_entries()

    def build():
        series = {"Mithril": [], "PrIDE": [], "QPRAC+Pro-EA": []}
        ea_runs = [
            simulate_workload(
                name, config=config,
                variant=MitigationVariant.QPRAC_PROACTIVE_EA,
                n_entries=entries,
            )
            for name in names
        ]
        ea_mean = sum(
            run.slowdown_pct_vs(baselines[name])
            for run, name in zip(ea_runs, names)
        ) / len(names)
        for t_rh in TRH_VALUES:
            for label, factory in (
                ("Mithril", mithril_factory(t_rh)),
                ("PrIDE", pride_factory(t_rh)),
            ):
                slow = []
                for name in names:
                    run = simulate_workload(
                        name, config=config,
                        defense_factory=factory, n_entries=entries,
                    )
                    slow.append(run.slowdown_pct_vs(baselines[name]))
                series[label].append((t_rh, round(sum(slow) / len(slow), 1)))
            # QPRAC's N_BO=32 config defends T_RH 66+ regardless of the
            # sweep value; its cost is flat.
            series["QPRAC+Pro-EA"].append((t_rh, round(ea_mean, 1)))
        return series

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_series(
        "fig20",
        "Figure 20: slowdown %% vs T_RH "
        "(paper @64: Mithril 69, PrIDE 54, QPRAC 0)",
        "T_RH",
        series,
    )
    mithril = dict(series["Mithril"])
    pride = dict(series["PrIDE"])
    qprac = dict(series["QPRAC+Pro-EA"])
    for t_rh in TRH_VALUES:
        assert mithril[t_rh] >= pride[t_rh] - 1.0, t_rh
        assert qprac[t_rh] < 1.0, t_rh
    assert mithril[64] > 25.0
    assert pride[64] > 15.0
    assert mithril[64] > mithril[1024]
    assert pride[64] > pride[1024]
