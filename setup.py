"""Setuptools shim.

The environment ships setuptools 65 without the ``wheel`` package, so PEP
660 editable installs (which need ``bdist_wheel``) fail.  Keeping a classic
``setup.py`` lets ``pip install -e .`` fall back to the legacy develop
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
