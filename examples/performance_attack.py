#!/usr/bin/env python3
"""Performance-attack study (paper Section VI-E, Figure 19).

PRAC's Alert Back-Off lets a *performance* attacker weaponise the
mitigation path: hammer rows in many banks, force a stream of Alerts,
and stall the rank with all-bank RFMs.  This example reports both
reproductions of Figure 19:

* the paper's worst-case analytical attacker (matches the reported
  RFMab numbers), and
* an honest event-driven pool attacker against the real QPRAC state
  machines (more favourable to QPRAC — opportunistic mitigation makes
  the attacker pay for every drained pool row).

Run:  python examples/performance_attack.py
"""

from __future__ import annotations

from repro.analysis.report import render_series
from repro.params import MitigationVariant, RfmScope, default_config
from repro.sim import (
    analytical_bandwidth_reduction,
    baseline_factory,
    qprac_factory,
    run_bandwidth_attack,
)

NBO_VALUES = (16, 32, 64, 128)


def analytical() -> None:
    series = {
        "RFMab": [
            (n, round(100 * analytical_bandwidth_reduction(n)))
            for n in NBO_VALUES
        ],
        "RFMab+Pro": [
            (n, round(100 * analytical_bandwidth_reduction(n, proactive=True)))
            for n in NBO_VALUES
        ],
        "RFMsb+Pro": [
            (n, round(100 * analytical_bandwidth_reduction(
                n, RfmScope.SAME_BANK, proactive=True)))
            for n in NBO_VALUES
        ],
        "RFMpb+Pro": [
            (n, round(100 * analytical_bandwidth_reduction(
                n, RfmScope.PER_BANK, proactive=True)))
            for n in NBO_VALUES
        ],
    }
    print(render_series(
        "Analytical worst case: activation-bandwidth loss % (Figure 19)",
        "N_BO", series,
    ))
    print("Paper reference points: RFMab plain 93%@16 / 62%@128;")
    print("RFMab+Proactive 91/77/~10/0 at N_BO 16/32/64/128.\n")


def simulated() -> None:
    config = default_config()
    base = run_bandwidth_attack(
        config, defense_factory=baseline_factory(),
        measure_ns=120_000, warmup_ns=40_000, pool_rows_per_bank=8,
    )
    print(f"Undefended rank under attack: {base.acts:,d} ACTs / "
          f"{base.duration_ns / 1000:.0f} us")
    series = {"QPRAC": [], "QPRAC+Proactive": []}
    for n_bo in (16, 32, 64):
        for variant, label in (
            (MitigationVariant.QPRAC, "QPRAC"),
            (MitigationVariant.QPRAC_PROACTIVE, "QPRAC+Proactive"),
        ):
            cfg = config.with_prac(n_bo=n_bo).with_variant(variant)
            run = run_bandwidth_attack(
                cfg, defense_factory=qprac_factory(variant),
                measure_ns=120_000, warmup_ns=40_000, pool_rows_per_bank=8,
            )
            series[label].append(
                (n_bo, round(100 * run.reduction_vs(base), 1))
            )
    print()
    print(render_series(
        "Simulated pool attacker: bandwidth loss % (honest QPRAC model)",
        "N_BO", series,
    ))
    print("\nThe simulated attacker is weaker than the analytical bound")
    print("because every RFMab opportunistically drains one pool row per")
    print("bank — the attacker must rebuild N_BO activations per Alert.")


if __name__ == "__main__":
    analytical()
    simulated()
