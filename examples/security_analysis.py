#!/usr/bin/env python3
"""Security analysis walkthrough (paper Sections II-E and IV).

Regenerates the analytical security story end to end:

* why FIFO-based PRAC implementations are broken (Toggle+Forget and
  Fill+Escape attacks against Panopticon),
* the wave/feinting-attack bound on ideal PRAC and QPRAC
  (Equations 1-3, Figures 6-8),
* the effect of proactive mitigation (Figures 11-13),
* and the empirical validation that the 5-entry PSQ matches an
  oracular top-N implementation under the wave attack (Section IV-B).

Run:  python examples/security_analysis.py
"""

from __future__ import annotations

from repro.analysis.report import render_series
from repro.params import PRACParams
from repro.security import (
    compare_psq_vs_ideal,
    figure8_series,
    fill_escape_max_acts,
    max_r1,
    n_online,
    secure_trh,
    toggle_forget_max_acts,
)
from repro.security.analytical import _cfg_for


def broken_fifo_designs() -> None:
    print("=" * 68)
    print("Why FIFO service queues are insecure under non-blocking Alerts")
    print("=" * 68)
    print("Toggle+Forget vs Panopticon (queue size -> unmitigated ACTs):")
    for q in (4, 8, 16):
        print(f"  Q={q:2d}: {toggle_forget_max_acts(q, t_bit=6):>8,d} ACTs "
              "without a single mitigation")
    print("Fill+Escape vs full-counter Panopticon "
          "(threshold -> unmitigated ACTs):")
    for m in (64, 512, 4096):
        print(f"  M={m:4d}: {fill_escape_max_acts(m, queue_size=4):>8,d}")
    print("-> both attacks exceed any sub-100 T_RH by orders of magnitude.\n")


def qprac_bounds() -> None:
    print("=" * 68)
    print("QPRAC's wave-attack bound (Equations 1-3)")
    print("=" * 68)
    cfg = _cfg_for(32, 1)
    pool = max_r1(cfg)
    print(f"Default config (N_BO=32, PRAC-1): the attacker can set up at "
          f"most R1={pool:,d} rows in one tREFW,")
    print(f"giving N_online={n_online(pool, cfg)} extra activations -> "
          f"secure down to T_RH={secure_trh(cfg)} (paper: 71).")
    series = figure8_series(nbo_values=(1, 8, 32, 128))
    print()
    print(render_series(
        "Secure T_RH vs N_BO (paper Figure 8)",
        "N_BO",
        {f"PRAC-{n}": pts for n, pts in series.items()},
    ))
    print()
    pro = figure8_series(proactive=True, nbo_values=(1, 8, 32, 128))
    print(render_series(
        "...with proactive mitigation (paper Figure 13)",
        "N_BO",
        {f"QPRAC-{n}+Pro": pts for n, pts in pro.items()},
    ))
    print()


def psq_equals_ideal() -> None:
    print("=" * 68)
    print("Empirical check: 5-entry PSQ == oracular top-N (Section IV-B)")
    print("=" * 68)
    params = PRACParams(n_bo=4)
    for r1 in (100, 400):
        psq, ideal = compare_psq_vs_ideal(r1, params)
        print(f"  wave attack, R1={r1:4d}: "
              f"PSQ max unmitigated = {psq.max_unmitigated_acts:3d}, "
              f"ideal = {ideal.max_unmitigated_acts:3d}  "
              f"{'(identical)' if psq.max_unmitigated_acts == ideal.max_unmitigated_acts else '(MISMATCH!)'}")
    print("-> the size-limited queue loses nothing against the wave attack.")


if __name__ == "__main__":
    broken_fifo_designs()
    qprac_bounds()
    psq_equals_ideal()
