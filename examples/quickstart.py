#!/usr/bin/env python3
"""Quickstart: the QPRAC mechanism in five minutes.

Walks the three layers of the library:

1. the core data structure (the priority-based service queue),
2. the per-bank QPRAC engine under a hammering pattern,
3. a full-system simulation of one workload with and without QPRAC.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import PriorityServiceQueue, QPRACBank
from repro.params import MitigationVariant, PRACParams
from repro.security import secure_trh
from repro.sim import simulate_baseline, simulate_workload


def demo_psq() -> None:
    print("=" * 64)
    print("1. The Priority-based Service Queue (PSQ)")
    print("=" * 64)
    psq = PriorityServiceQueue(size=5)
    # Simulate the situation of the paper's Figure 9: the queue is full
    # of rows at the Back-Off threshold...
    for row in range(100, 105):
        psq.observe(row, 32)
    print(f"queue full: {psq.snapshot()}")
    # ...and the attacker hammers a target with the ABO_ACT window.
    accepted = psq.observe(999, 35)
    print(f"hammered row 999 (count 35) accepted? {accepted}")
    print(f"next mitigation target: row {psq.top().row} "
          f"(count {psq.top().count})")
    print("-> a FIFO queue would have dropped row 999; the PSQ cannot.\n")


def demo_bank() -> None:
    print("=" * 64)
    print("2. One DRAM bank defended by QPRAC (N_BO = 8)")
    print("=" * 64)
    params = PRACParams(n_bo=8)
    bank = QPRACBank(params, num_rows=4096, variant=MitigationVariant.QPRAC)
    row = 1000
    for act in range(1, 9):
        wants_alert = bank.on_activation(row)
        if wants_alert:
            print(f"activation #{act}: bank asserts Alert_n")
    mitigated = bank.on_rfm(is_alerting_bank=True)
    print(f"RFM mitigates row {mitigated[0]}; counter reset to "
          f"{bank.counters.get(row)}")
    victims = [row - 2, row - 1, row + 1, row + 2]
    print(f"victim counters after blast-radius refresh: "
          f"{[bank.counters.get(v) for v in victims]} (transitive tracking)\n")


def demo_security_bound() -> None:
    print("=" * 64)
    print("3. The analytical security bound (paper Figure 8)")
    print("=" * 64)
    from repro.security.analytical import _cfg_for

    for n_bo in (1, 32):
        for n_mit in (1, 2, 4):
            t_rh = secure_trh(_cfg_for(n_bo, n_mit))
            print(f"  N_BO={n_bo:3d}, {n_mit} RFM/Alert -> secure down to "
                  f"T_RH = {t_rh}")
    print("  (paper: 44/29/22 at N_BO=1 and 71/58/52 at N_BO=32)\n")


def demo_full_system() -> None:
    print("=" * 64)
    print("4. Full-system simulation: 429.mcf on 4 cores")
    print("=" * 64)
    entries = 5000
    baseline = simulate_baseline("429.mcf", n_entries=entries)
    for variant in (
        MitigationVariant.QPRAC_NOOP,
        MitigationVariant.QPRAC,
        MitigationVariant.QPRAC_PROACTIVE_EA,
    ):
        run = simulate_workload("429.mcf", variant=variant, n_entries=entries)
        print(f"  {variant.value:22s} slowdown {run.slowdown_pct_vs(baseline):6.2f}%"
              f"   alerts/tREFI {run.alerts_per_trefi:6.3f}")
    print("  (paper: NoOp 12.4%, QPRAC 0.8%, proactive variants ~0%)")


if __name__ == "__main__":
    demo_psq()
    demo_bank()
    demo_security_bound()
    demo_full_system()
