#!/usr/bin/env python3
"""Datacenter workload study: QPRAC on server-class memory traffic.

The paper's introduction motivates in-DRAM Rowhammer mitigation with
server consolidation: database (TPC), key-value (YCSB) and analytics
(Hadoop) tenants hammering shared DDR5.  This example runs those three
suites through the evaluated QPRAC variants and reports the three
numbers an operator cares about: slowdown, Alert rate, and mitigation
energy.

Run:  python examples/datacenter_workload_study.py
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.energy import mitigation_energy_pct
from repro.params import MitigationVariant, default_config
from repro.sim import simulate_baseline, simulate_workload
from repro.workloads import workloads_by_suite

ENTRIES = 5000
SUITES = ("tpc", "ycsb", "hadoop")
VARIANTS = (
    MitigationVariant.QPRAC_NOOP,
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE_EA,
)


def main() -> None:
    config = default_config()
    rows = []
    for suite in SUITES:
        # Two representative applications per suite keep runtime short;
        # pass more via workloads_by_suite(suite) for a full sweep.
        specs = workloads_by_suite(suite)[:2]
        for spec in specs:
            baseline = simulate_baseline(spec, config=config, n_entries=ENTRIES)
            for variant in VARIANTS:
                run = simulate_workload(
                    spec, config=config, variant=variant, n_entries=ENTRIES
                )
                rows.append([
                    suite,
                    spec.name,
                    variant.value,
                    round(run.slowdown_pct_vs(baseline), 2),
                    round(run.alerts_per_trefi, 3),
                    round(mitigation_energy_pct(run, config), 2),
                ])
    print(render_table(
        "Datacenter study: QPRAC variants on server suites "
        "(N_BO=32, PRAC-1)",
        ["suite", "workload", "variant", "slowdown %",
         "alerts/tREFI", "energy %"],
        rows,
    ))
    print()
    print("Reading the table:")
    print(" * qprac-noop shows why opportunistic mitigation matters —")
    print("   every bank alerts on its own and the rank stalls repeatedly.")
    print(" * qprac cuts Alerts by an order of magnitude at <1% slowdown.")
    print(" * qprac+proactive-ea removes Alerts entirely in the REF shadow")
    print("   while staying within ~2% mitigation energy (paper Table III).")


if __name__ == "__main__":
    main()
