#!/usr/bin/env python3
"""Datacenter workload study: QPRAC on server-class memory traffic.

The paper's introduction motivates in-DRAM Rowhammer mitigation with
server consolidation: database (TPC), key-value (YCSB) and analytics
(Hadoop) tenants hammering shared DDR5.  This example runs those three
suites through the evaluated QPRAC variants and reports the three
numbers an operator cares about: slowdown, Alert rate, and mitigation
energy.

The whole study is one declarative sweep through the experiment
orchestrator, so it parallelises (``--jobs 4``) and re-runs hit the
result cache (``--cache-dir``) instead of re-simulating.

Run:  python examples/datacenter_workload_study.py [--jobs N]
"""

from __future__ import annotations

import argparse

from repro.analysis.report import render_table
from repro.energy import mitigation_energy_pct
from repro.exp import ResultStore, SweepSpec, run_sweep, stderr_progress
from repro.params import MitigationVariant, default_config
from repro.workloads import workloads_by_suite

ENTRIES = 5000
SUITES = ("tpc", "ycsb", "hadoop")
VARIANTS = (
    MitigationVariant.QPRAC_NOOP,
    MitigationVariant.QPRAC,
    MitigationVariant.QPRAC_PROACTIVE_EA,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory "
                        "(default: ~/.cache/qprac-repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always simulate; do not touch the cache")
    parser.add_argument("--engine", default="event",
                        help="simulation engine (see `repro engines`): "
                        "event = reference fidelity, epoch = batched, "
                        "several times faster")
    args = parser.parse_args()

    config = default_config()
    # Two representative applications per suite keep runtime short;
    # extend the slices for a full sweep — the cache makes that cheap.
    specs = [
        spec for suite in SUITES for spec in workloads_by_suite(suite)[:2]
    ]
    sweep = run_sweep(
        SweepSpec(
            workloads=tuple(specs),
            defenses=VARIANTS,
            config=config,
            include_baseline=True,
            n_entries=ENTRIES,
            engine=args.engine,
        ),
        jobs=args.jobs,
        store=None if args.no_cache else ResultStore(args.cache_dir),
        progress=stderr_progress,
    )
    comparison = sweep.comparison()
    rows = []
    for spec in specs:
        for variant in VARIANTS:
            run = comparison.results[variant.value][spec.name]
            rows.append([
                spec.suite,
                spec.name,
                variant.value,
                round(comparison.slowdown_pct(variant.value, spec.name), 2),
                round(run.alerts_per_trefi, 3),
                round(mitigation_energy_pct(run, config), 2),
            ])
    print(render_table(
        "Datacenter study: QPRAC variants on server suites "
        "(N_BO=32, PRAC-1)",
        ["suite", "workload", "variant", "slowdown %",
         "alerts/tREFI", "energy %"],
        rows,
    ))
    print()
    print(f"{sweep.total_jobs} jobs: {sweep.executed} simulated, "
          f"{sweep.cache_hits} from cache in {sweep.elapsed_s:.1f}s")
    print()
    print("Reading the table:")
    print(" * qprac-noop shows why opportunistic mitigation matters —")
    print("   every bank alerts on its own and the rank stalls repeatedly.")
    print(" * qprac cuts Alerts by an order of magnitude at <1% slowdown.")
    print(" * qprac+proactive-ea removes Alerts entirely in the REF shadow")
    print("   while staying within ~2% mitigation energy (paper Table III).")


if __name__ == "__main__":
    main()
